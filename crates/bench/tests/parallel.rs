//! The ISSUE-1 parallel-harness guarantees: `run_matrix` is bitwise
//! deterministic across worker counts, and the shared [`ResultCache`]
//! simulates each distinct key exactly once under concurrent access.

use autorfm::experiments::Scenario;
use autorfm_bench::{run_matrix, ResultCache, RunOpts, SimJob, BASELINE_ZEN};
use autorfm_workloads::WorkloadSpec;

fn quick_opts(jobs: usize) -> RunOpts {
    RunOpts {
        cores: 2,
        instructions: 2_500,
        workloads: ["mcf", "bwaves", "triad"]
            .iter()
            .map(|n| WorkloadSpec::by_name(n).unwrap())
            .collect(),
        jobs,
        ..RunOpts::default()
    }
}

fn matrix(opts: &RunOpts) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for spec in &opts.workloads {
        for scenario in [BASELINE_ZEN, Scenario::AutoRfm { th: 4 }] {
            jobs.push((*spec, scenario));
        }
    }
    jobs
}

/// 3 workloads x 2 scenarios: `--jobs 4` returns results equal to `--jobs 1`
/// (elapsed, acts, alerts, IPC) and in the same (input) order.
#[test]
fn run_matrix_parallel_matches_serial() {
    let serial_opts = quick_opts(1);
    let parallel_opts = quick_opts(4);
    let jobs = matrix(&serial_opts);

    let serial = run_matrix(&jobs, &serial_opts);
    let parallel = run_matrix(&jobs, &parallel_opts);

    assert_eq!(serial.len(), jobs.len());
    assert_eq!(parallel.len(), jobs.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let (spec, scenario) = jobs[i];
        assert_eq!(s.workload, spec.name, "serial results out of input order");
        assert_eq!(p.workload, spec.name, "parallel results out of input order");
        assert_eq!(
            s.elapsed, p.elapsed,
            "elapsed differs for {} / {scenario}",
            spec.name
        );
        assert_eq!(
            s.dram.acts.get(),
            p.dram.acts.get(),
            "acts differ for {} / {scenario}",
            spec.name
        );
        assert_eq!(
            s.dram.alerts.get(),
            p.dram.alerts.get(),
            "alerts differ for {} / {scenario}",
            spec.name
        );
        assert_eq!(
            s.per_core_ipc, p.per_core_ipc,
            "IPC differs for {} / {scenario}",
            spec.name
        );
    }
}

/// Many concurrent requests for overlapping keys: each distinct
/// `(workload, scenario)` is simulated exactly once.
#[test]
fn shared_cache_simulates_each_key_exactly_once() {
    let opts = quick_opts(8);
    let unique = matrix(&opts);
    // Request every key 6 times, interleaved, so several workers race on the
    // same OnceLock slots.
    let mut duplicated = Vec::new();
    for _ in 0..6 {
        duplicated.extend_from_slice(&unique);
    }

    let cache = ResultCache::new();
    cache.prefetch(&duplicated, &opts);

    assert_eq!(cache.len(), unique.len(), "cache holds one entry per key");
    assert_eq!(
        cache.simulations_run(),
        unique.len(),
        "a baseline or scenario was simulated more than once"
    );

    // And the cached results are the exact objects later `get`s observe.
    for &(spec, scenario) in &unique {
        let again = cache.get(spec, scenario, &opts);
        assert_eq!(again.workload, spec.name);
    }
    assert_eq!(cache.simulations_run(), unique.len());
}

/// A bad cell in a batched prefetch becomes a structured failure record —
/// cell key plus error text — while its batchmates still produce results.
#[test]
fn batched_prefetch_surfaces_bad_cells_as_failure_records() {
    let mut opts = quick_opts(2);
    opts.batch = 4;
    let spec = opts.workloads[0];
    // AutoRFM with window 0 is rejected by every tracker; its lane must not
    // poison the two valid cells batched alongside it.
    let jobs: Vec<SimJob> = vec![
        (spec, BASELINE_ZEN),
        (spec, Scenario::AutoRfm { th: 0 }),
        (spec, Scenario::AutoRfm { th: 4 }),
    ];

    let cache = ResultCache::isolated();
    cache.prefetch_batched(&jobs, &opts);

    let failures = cache.failures();
    assert_eq!(
        failures.len(),
        1,
        "exactly the bad cell failed: {failures:?}"
    );
    assert_eq!(failures[0].workload, spec.name);
    assert_eq!(
        failures[0].scenario,
        Scenario::AutoRfm { th: 0 }.to_string()
    );
    assert!(!failures[0].error.is_empty());

    // Both healthy cells are cached and never re-simulated by later gets.
    let a = cache.get(spec, BASELINE_ZEN, &opts);
    let b = cache.get(spec, Scenario::AutoRfm { th: 4 }, &opts);
    assert_eq!(a.workload, spec.name);
    assert_eq!(b.workload, spec.name);
    assert_eq!(cache.simulations_run(), 2);
}

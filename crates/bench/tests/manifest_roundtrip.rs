//! End-to-end manifest flow: a [`Harness`] records simulations, writes the
//! manifest where `AUTORFM_MANIFEST` points (how `run_all` directs children),
//! and `RunManifest::load` round-trips everything `telemetry_report` needs.
//!
//! Kept in its own integration-test binary because it mutates the process
//! environment.

use autorfm::telemetry::RunManifest;
use autorfm_bench::{run, Harness, RunOpts, BASELINE_ZEN};
use autorfm_workloads::WorkloadSpec;

#[test]
fn harness_writes_manifest_where_env_points() {
    let dir = std::env::temp_dir().join("autorfm-manifest-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.json");
    let _ = std::fs::remove_file(&path);
    std::env::set_var("AUTORFM_MANIFEST", &path);

    let spec = WorkloadSpec::by_name("mcf").unwrap();
    let opts = RunOpts {
        cores: 2,
        instructions: 2_000,
        workloads: vec![spec],
        jobs: 1,
        telemetry: true,
        ..RunOpts::default()
    };
    let mut harness = Harness::new(&opts);
    let result = run(spec, BASELINE_ZEN, &opts);
    harness.record(&format!("{}/{BASELINE_ZEN}", spec.name), &result);
    harness.record(&format!("{}/{BASELINE_ZEN}", spec.name), &result); // dup: kept once
    harness.finish();

    let manifest = RunManifest::load(&path).expect("manifest written and parseable");
    assert_eq!(manifest.jobs, 1);
    assert_eq!(manifest.runs.len(), 1, "duplicate keys are kept once");
    assert!(manifest.wall_s > 0.0);
    assert_eq!(manifest.sim_cycles, result.elapsed.raw());
    assert!(manifest.cycles_per_sec > 0.0);

    let entry = &manifest.runs[0];
    assert_eq!(entry.key, format!("mcf/{BASELINE_ZEN}"));
    assert!(entry.series.is_some(), "telemetry on records the series");
    let acts = entry.metrics.get("dram_acts", &[]).expect("dram export");
    assert_eq!(acts.scalar() as u64, result.dram.acts.get());
    assert!(entry.metrics.get("mc_row_hits", &[]).is_some());
    assert!(entry.metrics.get("llc_load_misses", &[]).is_some());

    // What telemetry_report renders must not panic and must name the run.
    assert!(manifest.summary().contains("mcf/baseline-zen"));
    assert!(manifest
        .diff(&manifest)
        .iter()
        .all(|d| d.delta() == Some(0.0)));
}

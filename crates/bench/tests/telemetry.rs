//! ISSUE-2 telemetry guarantees: the disabled (default) path is bitwise
//! identical to a harness without telemetry, and the enabled path records
//! epoch series and full metric registries without perturbing results.

use autorfm::experiments::Scenario;
use autorfm_bench::{run_matrix, RunOpts, SimJob, BASELINE_ZEN};
use autorfm_workloads::WorkloadSpec;

fn quick_opts(telemetry: bool) -> RunOpts {
    RunOpts {
        cores: 2,
        instructions: 2_500,
        workloads: ["mcf", "bwaves"]
            .iter()
            .map(|n| WorkloadSpec::by_name(n).unwrap())
            .collect(),
        jobs: 2,
        telemetry,
        ..RunOpts::default()
    }
}

fn matrix(opts: &RunOpts) -> Vec<SimJob> {
    opts.workloads
        .iter()
        .flat_map(|&spec| [(spec, BASELINE_ZEN), (spec, Scenario::AutoRfm { th: 4 })])
        .collect()
}

/// Telemetry off (the default) must leave every statistic bitwise identical
/// to the telemetry-on run — the sampler only reads counters — and attach no
/// series or registry to the results.
#[test]
fn disabled_path_is_bitwise_identical_to_enabled() {
    let off_opts = quick_opts(false);
    let on_opts = quick_opts(true);
    let jobs = matrix(&off_opts);

    let off = run_matrix(&jobs, &off_opts);
    let on = run_matrix(&jobs, &on_opts);

    assert_eq!(off.len(), on.len());
    for (i, (a, b)) in off.iter().zip(&on).enumerate() {
        let (spec, scenario) = jobs[i];
        assert_eq!(
            a.elapsed, b.elapsed,
            "elapsed differs for {} / {scenario}",
            spec.name
        );
        assert_eq!(a.dram.acts.get(), b.dram.acts.get());
        assert_eq!(a.dram.alerts.get(), b.dram.alerts.get());
        assert_eq!(a.dram.victim_refreshes.get(), b.dram.victim_refreshes.get());
        assert_eq!(a.per_core_ipc, b.per_core_ipc);
        assert_eq!(a.act_pki, b.act_pki);
        assert_eq!(a.row_hit_rate, b.row_hit_rate);

        assert!(a.series.is_none(), "telemetry off must not record a series");
        assert!(a.metrics.is_none());
        let series = b.series.as_ref().expect("telemetry on records a series");
        assert!(!series.samples.is_empty());
        let acts: u64 = series.samples.iter().map(|s| s.acts).sum();
        assert_eq!(
            acts,
            b.dram.acts.get(),
            "epoch deltas must tally to the cumulative total"
        );
        assert!(b.metrics.is_some());
    }
}

/// The disabled path stays deterministic run-to-run (the golden guarantee the
/// `.txt` reports rely on).
#[test]
fn disabled_path_is_deterministic() {
    let opts = quick_opts(false);
    let jobs = matrix(&opts);
    let a = run_matrix(&jobs, &opts);
    let b = run_matrix(&jobs, &opts);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.elapsed, y.elapsed);
        assert_eq!(x.dram.acts.get(), y.dram.acts.get());
        assert_eq!(x.per_core_ipc, y.per_core_ipc);
    }
}

/// `--epoch-ns` shrinks the window and multiplies the sample count without
/// changing any cumulative statistic.
#[test]
fn epoch_length_controls_resolution_only() {
    let coarse_opts = quick_opts(true);
    let mut fine_opts = quick_opts(true);
    fine_opts.epoch_ns = Some(100);
    let spec = WorkloadSpec::by_name("mcf").unwrap();
    let jobs = [(spec, BASELINE_ZEN)];

    let coarse = &run_matrix(&jobs, &coarse_opts)[0];
    let fine = &run_matrix(&jobs, &fine_opts)[0];

    assert_eq!(coarse.elapsed, fine.elapsed);
    assert_eq!(coarse.dram.acts.get(), fine.dram.acts.get());
    let cs = coarse.series.as_ref().unwrap();
    let fs = fine.series.as_ref().unwrap();
    assert!(
        fs.samples.len() > cs.samples.len(),
        "100 ns epochs must out-sample tREFI epochs ({} vs {})",
        fs.samples.len(),
        cs.samples.len()
    );
    let coarse_acts: u64 = cs.samples.iter().map(|s| s.acts).sum();
    let fine_acts: u64 = fs.samples.iter().map(|s| s.acts).sum();
    assert_eq!(coarse_acts, fine_acts);
}

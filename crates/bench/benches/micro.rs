//! Criterion micro-benchmarks for the performance-critical components:
//! the mapping PRP (must be "low-latency" like K-cipher), the trackers (one
//! call per ACT), Fractal Mitigation, the DRAM device command path, and a
//! small end-to-end system step.

use autorfm::cpu::{Core, CoreParams, Op, Uncore, UncoreParams};
use autorfm::dram::{DeviceMitigation, DramConfig, DramDevice};
use autorfm::mapping::{FeistelPrp, MemoryMap, RubixMap, ZenMap};
use autorfm::memctrl::{MemController, MemRequest};
use autorfm::mitigation::{FractalPolicy, MitigationPolicy};
use autorfm::sim_core::{BankId, Cycle, DetRng, Geometry, LineAddr, RowAddr};
use autorfm::trackers::{build_tracker, MitigationTarget, TrackerKind};
use autorfm::{experiments::Scenario, SimConfig, System};
use autorfm_workloads::WorkloadSpec;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_prp(c: &mut Criterion) {
    let prp = FeistelPrp::new(29, 0xC0FFEE).unwrap();
    c.bench_function("prp/encrypt_29bit", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) & ((1 << 29) - 1);
            black_box(prp.encrypt(x))
        })
    });
}

fn bench_mapping(c: &mut Criterion) {
    let g = Geometry::paper_baseline();
    let zen = ZenMap::new(g).unwrap();
    let rubix = RubixMap::new(g, 7).unwrap();
    c.bench_function("mapping/zen_locate", |b| {
        let mut l = 0u64;
        b.iter(|| {
            l = (l + 97) & (g.total_lines() - 1);
            black_box(zen.locate(LineAddr(l)))
        })
    });
    c.bench_function("mapping/rubix_locate", |b| {
        let mut l = 0u64;
        b.iter(|| {
            l = (l + 97) & (g.total_lines() - 1);
            black_box(rubix.locate(LineAddr(l)))
        })
    });
}

fn bench_trackers(c: &mut Criterion) {
    for kind in [TrackerKind::Mint, TrackerKind::Pride, TrackerKind::Mithril] {
        let mut tracker = build_tracker(kind, 4).unwrap();
        let mut rng = DetRng::seeded(1);
        c.bench_function(format!("tracker/{kind}_window"), |b| {
            let mut row = 0u32;
            b.iter(|| {
                for _ in 0..4 {
                    row = row.wrapping_add(977) & 0x1FFFF;
                    tracker.on_activation(RowAddr(row), &mut rng);
                }
                black_box(tracker.select_for_mitigation(&mut rng))
            })
        });
    }
}

fn bench_mitigation(c: &mut Criterion) {
    let fm = FractalPolicy::new();
    let mut rng = DetRng::seeded(2);
    c.bench_function("mitigation/fractal_victims", |b| {
        b.iter(|| {
            black_box(fm.victims(MitigationTarget::direct(RowAddr(65_000)), 131_072, &mut rng))
        })
    });
}

fn bench_device(c: &mut Criterion) {
    c.bench_function("device/act_pre_autorfm", |b| {
        let cfg = DramConfig {
            geometry: Geometry::paper_baseline(),
            mitigation: DeviceMitigation::auto_rfm(4),
            ..DramConfig::default()
        };
        let mut dev = DramDevice::new(cfg, 3).unwrap();
        let mut now = Cycle::from_ns(10);
        let mut row = 0u32;
        b.iter(|| {
            row = row.wrapping_add(977) & 0x1FFFF;
            now = now.max(dev.earliest_act(BankId(0)));
            match dev.try_act(BankId(0), RowAddr(row), now) {
                autorfm::dram::ActOutcome::Accepted => {
                    let pre = dev.earliest_pre(BankId(0));
                    dev.precharge(BankId(0), pre);
                    now = pre;
                }
                autorfm::dram::ActOutcome::Alerted { retry_at } => now = retry_at,
            }
            black_box(now)
        })
    });
}

fn bench_controller(c: &mut Criterion) {
    c.bench_function("memctrl/read_roundtrip", |b| {
        let g = Geometry::small();
        let dev = DramDevice::new(
            DramConfig {
                geometry: g,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let mut mc = MemController::new(ZenMap::new(g).unwrap(), dev, Default::default());
        let mut uncore = Uncore::new(UncoreParams::default()).unwrap();
        let mut core = Core::new(0, CoreParams::default());
        let mut line = 0u64;
        let mut now = Cycle::ZERO;
        b.iter(|| {
            let mut stream = || {
                line = (line + 1) & (g.total_lines() - 1);
                Op::Load {
                    line: LineAddr(line),
                    dependent: false,
                }
            };
            for _ in 0..32 {
                now += Cycle::new(4);
                core.step(now, 4, &mut stream, &mut uncore);
                uncore.tick(&mut mc, now);
                mc.tick(now);
                uncore.tick(&mut mc, now);
            }
            black_box(core.retired())
        })
    });
}

/// `MemController::next_event_at` under the queue mixes that bracket the
/// event kernel's query cost: idle-bank-heavy (every bank clean and empty —
/// the floor the dirty-tracked cache must hit so low-traffic leaps stay
/// cheap) and hot-bank-heavy (every bank holding queued work, cached vs.
/// re-derived from a full queue scan).
fn bench_wake(c: &mut Criterion) {
    let g = Geometry::paper_baseline();
    let new_mc = || {
        let dev = DramDevice::new(
            DramConfig {
                geometry: g,
                mitigation: DeviceMitigation::auto_rfm(4),
                ..DramConfig::default()
            },
            7,
        )
        .unwrap();
        MemController::new(ZenMap::new(g).unwrap(), dev, Default::default())
    };
    let fill = |mc: &mut MemController<ZenMap>, now: Cycle, base: u64, count: u64| {
        for i in 0..count {
            mc.enqueue(
                MemRequest {
                    id: base + i,
                    core: 0,
                    line: LineAddr((base + i) & (g.total_lines() - 1)),
                    is_write: false,
                },
                now,
            );
        }
    };

    // All 64 banks idle, cache clean: the query is the device wake plus a
    // scan of empty bitmask words.
    c.bench_function("wake/next_event_idle", |b| {
        let mut mc = new_mc();
        let mut now = Cycle::from_ns(100);
        mc.tick(now);
        mc.next_event_at(now);
        b.iter(|| {
            now += Cycle::new(4);
            black_box(mc.next_event_at(now))
        })
    });

    // Every bank active with queued reads, cache clean: the pure
    // combine-over-active-banks arithmetic, no refreshes.
    c.bench_function("wake/next_event_hot_cached", |b| {
        let mut mc = new_mc();
        let mut now = Cycle::from_ns(100);
        fill(&mut mc, now, 0, 256);
        mc.tick(now);
        mc.next_event_at(now);
        b.iter(|| {
            now += Cycle::new(4);
            black_box(mc.next_event_at(now))
        })
    });

    // Steady-state churn: every tick services (dirtying banks), every query
    // refreshes them — the event kernel's hot-workload mix.
    c.bench_function("wake/next_event_hot_churn", |b| {
        let mut mc = new_mc();
        let mut now = Cycle::from_ns(100);
        let mut id = 0u64;
        b.iter(|| {
            if mc.pending_requests() < 64 {
                fill(&mut mc, now, id, 64);
                id += 64;
            }
            now += Cycle::new(4);
            mc.tick(now);
            mc.take_responses();
            black_box(mc.next_event_at(now))
        })
    });

    // The same hot wake re-derived from a full scan of every bank queue:
    // what every query cost before the dirty-tracked cache.
    c.bench_function("wake/fresh_full_scan_hot", |b| {
        let mut mc = new_mc();
        let mut now = Cycle::from_ns(100);
        fill(&mut mc, now, 0, 256);
        mc.tick(now);
        b.iter(|| {
            now += Cycle::new(4);
            black_box(mc.fresh_next_event_at(now))
        })
    });
}

/// LLC lookup fast path vs worst case: a re-hit on the per-set MRU hint
/// (the hot-way cache answers without touching the set's ways) against a
/// round-robin over every way of one set (each access hits a *different*
/// way than the hint names, so every lookup pays the full way scan plus the
/// LRU age sweep).
fn bench_llc(c: &mut Criterion) {
    use autorfm::cpu::{Llc, LlcParams};
    let p = LlcParams::default();
    let sets = p.capacity_bytes / u64::from(p.line_bytes) / u64::from(p.ways);

    c.bench_function("llc/hot_hit", |b| {
        let mut llc = Llc::new(p).unwrap();
        llc.access(LineAddr(3), false);
        llc.fill(LineAddr(3));
        b.iter(|| black_box(llc.access(LineAddr(3), false)))
    });

    c.bench_function("llc/way_scan", |b| {
        let mut llc = Llc::new(p).unwrap();
        // One line per way of set 3: round-robin hits defeat the MRU hint.
        let lines: Vec<LineAddr> = (0..u64::from(p.ways))
            .map(|k| LineAddr(3 + k * sets))
            .collect();
        for &line in &lines {
            llc.access(line, false);
            llc.fill(line);
        }
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % lines.len();
            black_box(llc.access(lines[k], false))
        })
    });
}

/// The SoA bank-state access pattern batched lockstep leans on: a full
/// act/pre sweep over every bank of one device, repeated 8× back to back
/// (the timing columns stay cache-hot across sweeps — the lockstep-chunk
/// pattern), against the same 8 sweeps spread across 8 devices (the
/// lane-switch pattern: every sweep starts cold). Identical command counts.
fn bench_bank_soa(c: &mut Criterion) {
    let g = Geometry::paper_baseline();
    let new_dev = || {
        DramDevice::new(
            DramConfig {
                geometry: g,
                ..DramConfig::default()
            },
            1,
        )
        .unwrap()
    };
    let sweep = |dev: &mut DramDevice, row: RowAddr| {
        for bank in 0..g.num_banks {
            let bank = BankId(bank);
            let now = dev.earliest_act(bank);
            if matches!(
                dev.try_act(bank, row, now),
                autorfm::dram::ActOutcome::Accepted
            ) {
                let pre = dev.earliest_pre(bank);
                dev.precharge(bank, pre);
            }
        }
    };

    c.bench_function("bank_soa/one_device_8_sweeps", |b| {
        let mut dev = new_dev();
        let mut row = 0u32;
        b.iter(|| {
            for _ in 0..8 {
                row = row.wrapping_add(977) & 0x1FFFF;
                sweep(&mut dev, RowAddr(row));
            }
            black_box(dev.earliest_act(BankId(0)))
        })
    });

    c.bench_function("bank_soa/8_devices_1_sweep", |b| {
        let mut devs: Vec<DramDevice> = (0..8).map(|_| new_dev()).collect();
        let mut row = 0u32;
        b.iter(|| {
            for dev in &mut devs {
                row = row.wrapping_add(977) & 0x1FFFF;
                sweep(dev, RowAddr(row));
            }
            black_box(devs[0].earliest_act(BankId(0)))
        })
    });
}

fn bench_system(c: &mut Criterion) {
    c.bench_function("system/autorfm4_1kinstr_2core", |b| {
        let spec = WorkloadSpec::by_name("mcf").unwrap();
        b.iter(|| {
            let cfg = SimConfig::builder(spec)
                .scenario(Scenario::AutoRfm { th: 4 })
                .cores(2)
                .instructions(1_000)
                .warmup_mem_ops(100)
                .build()
                .unwrap();
            black_box(System::new(cfg).unwrap().run().perf())
        })
    });
}

fn bench_checker(c: &mut Criterion) {
    use autorfm::dram::{CommandKind, CommandTrace, TimingChecker};
    // A realistic 10K-command clean trace, checked end-to-end.
    let t = autorfm::sim_core::DramTimings::ddr5();
    let mut trace = CommandTrace::new(64_000);
    for b in 0..8u16 {
        let mut now = Cycle::from_ns(100 + b as u64 * 7);
        for r in 0..1_000u32 {
            trace.record(now, BankId(b), CommandKind::Act { row: RowAddr(r) });
            trace.record(now + t.t_rcd, BankId(b), CommandKind::Rd);
            trace.record(now + t.t_ras, BankId(b), CommandKind::Pre);
            now += t.t_rc + Cycle::from_ns(16);
        }
    }
    let checker = TimingChecker::new(t, Geometry::paper_baseline());
    c.bench_function("trace/check_24k_commands", |b| {
        b.iter(|| black_box(checker.check(&trace).is_ok()))
    });
}

fn bench_tracefile(c: &mut Criterion) {
    use autorfm_workloads::TraceFile;
    let spec = WorkloadSpec::by_name("mcf").unwrap();
    let dir = std::env::temp_dir().join("autorfm-bench-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.trace");
    let mut gen = autorfm_workloads::WorkloadGen::new(spec, 0, 1);
    TraceFile::record(&path, &mut gen, 10_000).unwrap();
    c.bench_function("tracefile/load_10k_ops", |b| {
        b.iter(|| black_box(TraceFile::load(&path).unwrap().ops().len()))
    });
}

criterion_group!(
    benches,
    bench_prp,
    bench_mapping,
    bench_trackers,
    bench_mitigation,
    bench_device,
    bench_controller,
    bench_wake,
    bench_llc,
    bench_bank_soa,
    bench_system,
    bench_checker,
    bench_tracefile
);
criterion_main!(benches);

//! Attack-pattern fuzzer sweep: per-tracker minimum-activations-to-escape
//! curves for **every** registered tracker, with the OracleRH
//! strictly-hardest gate, lockstep lane evaluation, and an optional
//! persistent evaluation store.
//!
//! For each `autorfm::trackers::names()` entry this runs one
//! [`AttackFuzzer`] campaign (mutation + simulated annealing over the
//! [`AttackPattern`] genome space). Candidate evaluation fans out with
//! `par_map` over lane-sized chunks, each chunk running through a pooled
//! [`LaneEvaluator`]: persistent sims are reset per candidate instead of
//! rebuilt, and `--lanes` genomes advance in lockstep through one batched
//! dispatcher. Because each candidate's simulation seed is derived from its
//! genome digest, the sweep is bit-reproducible at any `--jobs` and any
//! `--lanes`.
//!
//! With `--store DIR`, every evaluation is also persisted as a sealed
//! `KIND_FUZZ` record in the shared cell store, keyed by
//! `(config, genome digest)`. A re-run over the same store (`--resume`
//! makes the intent explicit and requires `--store`) answers every stored
//! genome from disk — `sim_evaluated` drops to zero and the archive digest
//! is reproduced exactly.
//!
//! Per tracker the campaign yields an escape curve: for each watched damage
//! threshold, the fewest activations any archived candidate needed to push
//! the worst unmitigated damage past it. Curves collapse to a hardness
//! scalar `Σ_T min(crossing_T, budget+1)` — bigger means harder to escape.
//! The idealized OracleRH runs with an *eager* mitigation trigger, so its
//! hardness must be **strictly greater** than every real tracker's; the
//! binary exits nonzero otherwise, when some real tracker never escapes
//! even the lowest threshold, or when the MINT/PrIDE curves leave the
//! closed-form expectation band (run-of-successes
//! `E = (1-q^T)/((1-q)·q^T)`, `q = 1 - 1/W`): thresholds with `E` far
//! below the budget must be crossed within a small multiple of `E`, and
//! thresholds with `E` far above `budget × archive` must never be crossed.
//!
//! Every run also times the legacy serial evaluator (hash-map damage,
//! per-candidate sim construction) against the lane path on a fixed probe
//! batch under the interleaved min-of-3 protocol, asserts the two produce
//! bitwise-identical results, and reports `fuzz_speedup = min_ref/min_new`
//! (gated by `--gate-fuzz-speedup MIN`).
//!
//! The last stdout line is a JSON record `{pr, patterns_per_sec,
//! fuzz_speedup, lanes, sim_evaluated, store_hits, archive_digest,
//! trackers, curves, hardness, oracle_escape_margin, fuzzer_beats_fixed}`
//! that `scripts/verify.sh` distills into `BENCH_10.json`.
//!
//! Usage: `attack_fuzz [--tracker NAME] [--jobs N] [--seed N]
//! [--activations N] [--generations N] [--population N] [--lanes N]
//! [--store DIR] [--resume] [--gate-fuzz-speedup MIN] [--full]`
//! (unknown flags are rejected; harness env knobs like `AUTORFM_JOBS`
//! still apply underneath).

use autorfm::analysis::{
    AttackFuzzer, AttackPattern, CandidateResult, EvaluatorPool, FuzzConfig, FuzzStore,
    LaneEvaluator, MintModel,
};
use autorfm::snapshot::{digest64, Writer};
use autorfm::telemetry::Json;
use autorfm::trackers::TrackerKind;
use autorfm_bench::{par_map, print_table, Harness, RunOpts};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Interleaved A/B repetitions for the fuzz-speedup probe.
const KERNEL_REPS: usize = 3;
/// Candidates in the speedup probe batch.
const PROBE_BATCH: usize = 24;
/// A threshold is "must cross" when `slack × E` fits the budget this many
/// times over, and its crossing must lie within `slack × E`.
const BAND_SLACK: f64 = 16.0;
/// A threshold is "must never cross" when `E` exceeds the total simulated
/// activations (`budget × archive`) by this factor.
const UNREACHABLE_MARGIN: f64 = 64.0;

struct FuzzArgs {
    tracker: Option<TrackerKind>,
    jobs: usize,
    seed: u64,
    activations: u64,
    generations: u32,
    population: u32,
    lanes: usize,
    store: Option<PathBuf>,
    resume: bool,
    gate_fuzz_speedup: Option<f64>,
}

fn parse_args() -> FuzzArgs {
    let env = RunOpts::from_env();
    let mut out = FuzzArgs {
        tracker: None,
        jobs: env.jobs,
        seed: 9,
        activations: 30_000,
        generations: 6,
        population: 24,
        lanes: 8,
        store: None,
        resume: false,
        gate_fuzz_speedup: None,
    };
    let usage = "usage: attack_fuzz [--tracker NAME] [--jobs N] [--seed N] \
                 [--activations N] [--generations N] [--population N] \
                 [--lanes N] [--store DIR] [--resume] \
                 [--gate-fuzz-speedup MIN] [--full]";
    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value\n{usage}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tracker" => {
                let name = next_val(&mut args, "--tracker");
                out.tracker = Some(name.parse().unwrap_or_else(|e| panic!("{e}")));
            }
            "--jobs" => {
                out.jobs = next_val(&mut args, "--jobs")
                    .parse()
                    .expect("--jobs needs an integer");
            }
            "--seed" => {
                out.seed = next_val(&mut args, "--seed")
                    .parse()
                    .expect("--seed needs an integer");
            }
            "--activations" => {
                out.activations = next_val(&mut args, "--activations")
                    .parse()
                    .expect("--activations needs an integer");
            }
            "--generations" => {
                out.generations = next_val(&mut args, "--generations")
                    .parse()
                    .expect("--generations needs an integer");
            }
            "--population" => {
                out.population = next_val(&mut args, "--population")
                    .parse()
                    .expect("--population needs an integer");
            }
            "--lanes" => {
                out.lanes = next_val(&mut args, "--lanes")
                    .parse()
                    .expect("--lanes needs an integer");
                assert!(out.lanes >= 1, "--lanes must be at least 1");
            }
            "--store" => {
                out.store = Some(PathBuf::from(next_val(&mut args, "--store")));
            }
            "--resume" => out.resume = true,
            "--gate-fuzz-speedup" => {
                out.gate_fuzz_speedup = Some(
                    next_val(&mut args, "--gate-fuzz-speedup")
                        .parse()
                        .expect("--gate-fuzz-speedup needs a number"),
                );
            }
            "--full" => {
                out.activations = 120_000;
                out.generations = 12;
                out.population = 48;
            }
            other => panic!("unknown argument {other:?}\n{usage}"),
        }
    }
    assert!(
        !out.resume || out.store.is_some(),
        "--resume needs --store DIR (nothing to resume from)\n{usage}"
    );
    out
}

/// Store-aware batched evaluator: answers stored genomes from `store`,
/// simulates the misses through pooled lane evaluators (`jobs`-way over
/// lane-sized chunks), persists fresh results, and returns everything in
/// batch order.
fn evaluate_batch(
    pool: &EvaluatorPool,
    store: Option<&FuzzStore>,
    jobs: usize,
    batch: &[AttackPattern],
    sim_evaluated: &AtomicU64,
    store_hits: &AtomicU64,
) -> Vec<CandidateResult> {
    let mut slots: Vec<Option<CandidateResult>> = vec![None; batch.len()];
    let mut misses: Vec<(usize, AttackPattern)> = Vec::new();
    for (i, p) in batch.iter().enumerate() {
        match store.and_then(|s| s.get(p.digest())) {
            Some(hit) => {
                store_hits.fetch_add(1, Ordering::Relaxed);
                slots[i] = Some(hit);
            }
            None => misses.push((i, p.clone())),
        }
    }
    if !misses.is_empty() {
        sim_evaluated.fetch_add(misses.len() as u64, Ordering::Relaxed);
        let patterns: Vec<AttackPattern> = misses.iter().map(|(_, p)| p.clone()).collect();
        let chunks: Vec<&[AttackPattern]> = patterns.chunks(pool.lanes()).collect();
        let fresh: Vec<CandidateResult> = par_map(&chunks, jobs, |chunk| pool.evaluate(chunk))
            .into_iter()
            .flatten()
            .collect();
        debug_assert_eq!(fresh.len(), misses.len());
        for ((i, _), r) in misses.iter().zip(fresh) {
            if let Some(s) = store {
                s.put(&r).expect("fuzz store write failed");
            }
            slots[*i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every batch slot filled"))
        .collect()
}

/// Interleaved min-of-3 A/B: legacy serial evaluator (hash-map damage, a
/// fresh sim per candidate) vs the lane path (arena damage, pooled sims,
/// lockstep dispatch — constructed inside the timed region, as `run` pays
/// it). Asserts bitwise-identical results, returns `min_ref / min_new`.
fn fuzz_speedup_probe(cfg: &FuzzConfig, lanes: usize) -> f64 {
    let probe: Vec<AttackPattern> = AttackFuzzer::seed_patterns(cfg)
        .into_iter()
        .cycle()
        .take(PROBE_BATCH)
        .collect();
    let want: Vec<CandidateResult> = probe
        .iter()
        .map(|p| AttackFuzzer::evaluate(cfg, p))
        .collect();
    let mut min_ref = f64::INFINITY;
    let mut min_new = f64::INFINITY;
    for rep in 0..KERNEL_REPS {
        for side in 0..2 {
            // Alternate which evaluator goes first so drift hits both.
            if (rep + side) % 2 == 0 {
                let t = std::time::Instant::now();
                let got: Vec<CandidateResult> = probe
                    .iter()
                    .map(|p| AttackFuzzer::evaluate_ref(cfg, p))
                    .collect();
                min_ref = min_ref.min(t.elapsed().as_secs_f64());
                assert_eq!(got, want, "reference evaluator diverged");
            } else {
                let t = std::time::Instant::now();
                let mut ev = LaneEvaluator::new(cfg.clone(), lanes);
                let got = ev.evaluate_batch(&probe);
                min_new = min_new.min(t.elapsed().as_secs_f64());
                assert_eq!(got, want, "lane evaluator diverged from serial reference");
            }
        }
    }
    min_ref / min_new.max(1e-12)
}

/// Satellite gate: MINT (fractal) and PrIDE sample each activation with
/// probability `1/W`, so the expected activations to a first `T`-damage
/// escape follow the run-of-successes closed form. Checks each watched
/// threshold of `outcome` against the band and appends violations.
fn escape_band_violations(
    kind: TrackerKind,
    window: u32,
    budget: u64,
    thresholds: &[u64],
    curve: &[Option<u64>],
    archive_len: usize,
    violations: &mut Vec<String>,
) {
    let model = MintModel::rfm(window, false);
    let total_sim_acts = budget as f64 * archive_len.max(1) as f64;
    for (&t, &crossing) in thresholds.iter().zip(curve) {
        let e = model.expected_first_escape_acts(t as f64);
        if e * BAND_SLACK <= budget as f64 / 2.0 || e * 4.0 <= budget as f64 {
            // Comfortably reachable within one candidate's budget.
            match crossing {
                None => violations.push(format!(
                    "{kind} T={t}: expected escape within ~{e:.0} acts \
                     (budget {budget}), but no candidate crossed"
                )),
                Some(a) => {
                    let hi = (e * BAND_SLACK).min(budget as f64);
                    if (a as f64) < t as f64 || a as f64 > hi {
                        violations.push(format!(
                            "{kind} T={t}: crossing {a} outside closed-form band \
                             [{t}, {hi:.0}] (E={e:.0})"
                        ));
                    }
                }
            }
        } else if e >= total_sim_acts * UNREACHABLE_MARGIN {
            // Far beyond everything the whole archive simulated.
            if let Some(a) = crossing {
                violations.push(format!(
                    "{kind} T={t}: crossed at {a} but closed form expects \
                     ~{e:.0} acts ≫ {total_sim_acts:.0} total simulated"
                ));
            }
        }
        // In-between thresholds are borderline: no gate either way.
    }
}

fn main() {
    let args = parse_args();
    let opts = RunOpts::from_env();
    let mut harness = Harness::new(&opts);
    println!("=== Attack fuzzer: min activations to escape, per registered tracker ===\n");

    let kinds: Vec<TrackerKind> = match args.tracker {
        Some(t) => vec![t],
        None => TrackerKind::ALL.to_vec(),
    };
    let budget = args.activations;
    let sim_evaluated = AtomicU64::new(0);
    let store_hits = AtomicU64::new(0);
    let start = std::time::Instant::now();

    let mut outcomes = Vec::new();
    let mut archive_digests = Vec::new();
    for &kind in &kinds {
        let cfg = FuzzConfig {
            activations: args.activations,
            generations: args.generations,
            population: args.population,
            seed: args.seed,
            ..FuzzConfig::smoke(kind)
        };
        let mut fuzzer = AttackFuzzer::new(cfg);
        let cfg = fuzzer.cfg().clone();
        let store = args
            .store
            .as_deref()
            .map(|root| FuzzStore::open(root, &cfg).expect("cannot open fuzz store"));
        let pool = EvaluatorPool::new(cfg.clone(), args.lanes);
        let jobs = args.jobs;
        let outcome = fuzzer.run(|batch: &[AttackPattern]| {
            evaluate_batch(
                &pool,
                store.as_ref(),
                jobs,
                batch,
                &sim_evaluated,
                &store_hits,
            )
        });
        archive_digests.push(fuzzer.archive_digest());
        outcomes.push(outcome);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let evaluated: u64 = outcomes.iter().map(|o| o.evaluated).sum();
    let patterns_per_sec = evaluated as f64 / elapsed.max(1e-9);
    // One scalar over the whole sweep: digest of the per-tracker archive
    // digests in registry order. Equal ⇒ every archive bitwise-identical.
    let archive_digest = {
        let mut w = Writer::new();
        for d in &archive_digests {
            w.put_u64(*d);
        }
        digest64(w.bytes())
    };

    // Curves collapse to a hardness scalar: sum over thresholds of the
    // crossing point, with "never escaped" charged as budget+1.
    let hardness: Vec<u64> = outcomes
        .iter()
        .map(|o| o.curve.iter().map(|c| c.unwrap_or(budget + 1)).sum())
        .collect();

    let thresholds = outcomes[0].thresholds.clone();
    let mut headers: Vec<String> = vec!["tracker".into()];
    headers.extend(thresholds.iter().map(|t| format!("T={t}")));
    headers.push("hardness".into());
    headers.push("best/fixed".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (o, h) in outcomes.iter().zip(&hardness) {
        let mut row = vec![o.tracker.to_string()];
        row.extend(
            o.curve
                .iter()
                .map(|c| c.map_or_else(|| "-".into(), |a| a.to_string())),
        );
        row.push(h.to_string());
        row.push(format!("{}/{}", o.best.score(), o.best_fixed.score()));
        rows.push(row);
    }
    print_table(&header_refs, &rows);
    let hits = store_hits.load(Ordering::Relaxed);
    let simulated = sim_evaluated.load(Ordering::Relaxed);
    println!(
        "\n{evaluated} patterns evaluated in {elapsed:.2}s ({patterns_per_sec:.1}/s); \
         {simulated} simulated, {hits} answered from the store; \
         '-' = never escaped within the {budget}-activation budget"
    );

    // Gates: the eager oracle must be strictly hardest to escape, and every
    // real tracker's curve must carry signal (escape at the lowest
    // threshold). Both are skipped under `--tracker` (single-kind runs have
    // no cross-tracker ordering to check).
    let mut violations = Vec::new();
    let mut oracle_escape_margin = f64::NAN;
    if args.tracker.is_none() {
        let oracle_idx = kinds
            .iter()
            .position(|k| k.info().flags.oracle)
            .expect("registry has an oracle baseline");
        let oracle_hardness = hardness[oracle_idx];
        let mut max_real = 0u64;
        for (i, &kind) in kinds.iter().enumerate() {
            if i == oracle_idx {
                continue;
            }
            max_real = max_real.max(hardness[i]);
            if hardness[i] >= oracle_hardness {
                violations.push(format!(
                    "{kind} hardness {} >= oracle {}",
                    hardness[i], oracle_hardness
                ));
            }
            if outcomes[i].curve[0].is_none() {
                violations.push(format!(
                    "{kind} never escaped the lowest threshold T={} (no curve signal)",
                    thresholds[0]
                ));
            }
        }
        oracle_escape_margin = oracle_hardness as f64 / max_real.max(1) as f64;
        println!(
            "oracle hardness {oracle_hardness}; hardest real tracker {max_real}; \
             margin {oracle_escape_margin:.3}x"
        );
    }

    // Quantitative escape-curve gate: the memoryless 1/W samplers must land
    // inside the run-of-successes expectation band (runs whenever the kind
    // is present, including under `--tracker mint`/`--tracker pride`).
    for o in &outcomes {
        if matches!(o.tracker, TrackerKind::Mint | TrackerKind::Pride) {
            escape_band_violations(
                o.tracker,
                4, // FuzzConfig::smoke window — the sweep always runs W=4.
                budget,
                &o.thresholds,
                &o.curve,
                o.archive_len,
                &mut violations,
            );
        }
    }

    // Interleaved min-of-3 fuzz-speedup probe: legacy serial path vs the
    // lane path, on a short fixed batch of the first kind's config.
    let probe_cfg = FuzzConfig {
        activations: 10_000,
        seed: args.seed,
        ..FuzzConfig::smoke(kinds[0])
    };
    let fuzz_speedup = fuzz_speedup_probe(&probe_cfg, args.lanes);
    println!(
        "fuzz_speedup {fuzz_speedup:.2}x (lane path vs legacy serial, \
         min-of-{KERNEL_REPS} interleaved, {PROBE_BATCH}-candidate probe, \
         {} lanes)",
        args.lanes
    );
    if let Some(min) = args.gate_fuzz_speedup {
        if fuzz_speedup < min {
            violations.push(format!(
                "fuzz_speedup {fuzz_speedup:.2}x below gate {min:.2}x"
            ));
        }
    }

    let fuzzer_beats_fixed = outcomes
        .iter()
        .filter(|o| o.best.score() >= o.best_fixed.score())
        .count();
    let strictly_better = outcomes
        .iter()
        .filter(|o| o.best.score() > o.best_fixed.score())
        .count();
    println!(
        "fuzzer matched-or-beat the best fixed shape on {fuzzer_beats_fixed}/{} trackers \
         ({strictly_better} strictly better)",
        outcomes.len()
    );

    for (o, h) in outcomes.iter().zip(&hardness) {
        let tracker = o.tracker.to_string();
        harness.gauge("fuzz_hardness", &[("tracker", &tracker)], *h as f64);
        harness.gauge(
            "fuzz_best_damage",
            &[("tracker", &tracker)],
            o.best.score() as f64,
        );
    }
    harness.gauge("fuzz_patterns_per_sec", &[], patterns_per_sec);
    harness.gauge("fuzz_speedup", &[], fuzz_speedup);
    harness.gauge("fuzz_store_hits", &[], hits as f64);
    harness.finish();

    let curves = Json::Obj(
        outcomes
            .iter()
            .map(|o| {
                (
                    o.tracker.to_string(),
                    Json::Arr(
                        o.curve
                            .iter()
                            .map(|c| c.map_or(Json::Null, |a| Json::Num(a as f64)))
                            .collect(),
                    ),
                )
            })
            .collect(),
    );
    let hardness_obj = Json::Obj(
        kinds
            .iter()
            .zip(&hardness)
            .map(|(k, h)| (k.to_string(), Json::Num(*h as f64)))
            .collect(),
    );
    let record = Json::obj(vec![
        ("pr", Json::Num(10.0)),
        ("patterns_per_sec", Json::Num(patterns_per_sec)),
        ("fuzz_speedup", Json::Num(fuzz_speedup)),
        ("lanes", Json::Num(args.lanes as f64)),
        ("sim_evaluated", Json::Num(simulated as f64)),
        ("store_hits", Json::Num(hits as f64)),
        (
            "archive_digest",
            Json::Str(format!("{archive_digest:016x}")),
        ),
        (
            "trackers",
            Json::Arr(kinds.iter().map(|k| Json::Str(k.to_string())).collect()),
        ),
        (
            "thresholds",
            Json::Arr(thresholds.iter().map(|&t| Json::Num(t as f64)).collect()),
        ),
        ("curves", curves),
        ("hardness", hardness_obj),
        ("oracle_escape_margin", Json::Num(oracle_escape_margin)),
        ("fuzzer_beats_fixed", Json::Num(fuzzer_beats_fixed as f64)),
    ]);
    println!("{}", record.to_compact());

    if !violations.is_empty() {
        eprintln!("attack_fuzz: escape-curve gate FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(2);
    }
}

//! Attack-pattern fuzzer sweep: per-tracker minimum-activations-to-escape
//! curves for **every** registered tracker, with the OracleRH
//! strictly-hardest gate.
//!
//! For each `autorfm::trackers::names()` entry this runs one
//! [`AttackFuzzer`] campaign (mutation + simulated annealing over the
//! [`AttackPattern`] genome space), fanning candidate evaluation out with
//! `par_map`. Because each candidate's simulation seed is derived from its
//! genome digest, the sweep is bit-reproducible at any `--jobs`.
//!
//! Per tracker the campaign yields an escape curve: for each watched damage
//! threshold, the fewest activations any archived candidate needed to push
//! the worst unmitigated damage past it. Curves collapse to a hardness
//! scalar `Σ_T min(crossing_T, budget+1)` — bigger means harder to escape.
//! The idealized OracleRH runs with an *eager* mitigation trigger, so its
//! hardness must be **strictly greater** than every real tracker's; the
//! binary exits nonzero otherwise, and also when some real tracker never
//! escapes even the lowest threshold (the curve would carry no signal).
//!
//! The last stdout line is a JSON record `{pr, patterns_per_sec, trackers,
//! curves, hardness, oracle_escape_margin, fuzzer_beats_fixed}` that
//! `scripts/verify.sh` distills into `BENCH_9.json`.
//!
//! Usage: `attack_fuzz [--tracker NAME] [--jobs N] [--seed N]
//! [--activations N] [--generations N] [--population N] [--full]`
//! (unknown flags are rejected; harness env knobs like `AUTORFM_JOBS`
//! still apply underneath).

use autorfm::analysis::{AttackFuzzer, AttackPattern, FuzzConfig};
use autorfm::telemetry::Json;
use autorfm::trackers::TrackerKind;
use autorfm_bench::{par_map, print_table, Harness, RunOpts};

struct FuzzArgs {
    tracker: Option<TrackerKind>,
    jobs: usize,
    seed: u64,
    activations: u64,
    generations: u32,
    population: u32,
}

fn parse_args() -> FuzzArgs {
    let env = RunOpts::from_env();
    let mut out = FuzzArgs {
        tracker: None,
        jobs: env.jobs,
        seed: 9,
        activations: 30_000,
        generations: 6,
        population: 24,
    };
    let usage = "usage: attack_fuzz [--tracker NAME] [--jobs N] [--seed N] \
                 [--activations N] [--generations N] [--population N] [--full]";
    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value\n{usage}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tracker" => {
                let name = next_val(&mut args, "--tracker");
                out.tracker = Some(name.parse().unwrap_or_else(|e| panic!("{e}")));
            }
            "--jobs" => {
                out.jobs = next_val(&mut args, "--jobs")
                    .parse()
                    .expect("--jobs needs an integer");
            }
            "--seed" => {
                out.seed = next_val(&mut args, "--seed")
                    .parse()
                    .expect("--seed needs an integer");
            }
            "--activations" => {
                out.activations = next_val(&mut args, "--activations")
                    .parse()
                    .expect("--activations needs an integer");
            }
            "--generations" => {
                out.generations = next_val(&mut args, "--generations")
                    .parse()
                    .expect("--generations needs an integer");
            }
            "--population" => {
                out.population = next_val(&mut args, "--population")
                    .parse()
                    .expect("--population needs an integer");
            }
            "--full" => {
                out.activations = 120_000;
                out.generations = 12;
                out.population = 48;
            }
            other => panic!("unknown argument {other:?}\n{usage}"),
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let opts = RunOpts::from_env();
    let mut harness = Harness::new(&opts);
    println!("=== Attack fuzzer: min activations to escape, per registered tracker ===\n");

    let kinds: Vec<TrackerKind> = match args.tracker {
        Some(t) => vec![t],
        None => TrackerKind::ALL.to_vec(),
    };
    let budget = args.activations;
    let start = std::time::Instant::now();

    let mut outcomes = Vec::new();
    for &kind in &kinds {
        let cfg = FuzzConfig {
            activations: args.activations,
            generations: args.generations,
            population: args.population,
            seed: args.seed,
            ..FuzzConfig::smoke(kind)
        };
        let mut fuzzer = AttackFuzzer::new(cfg);
        let cfg = fuzzer.cfg().clone();
        let jobs = args.jobs;
        let outcome = fuzzer.run(|batch: &[AttackPattern]| {
            par_map(batch, jobs, |p| AttackFuzzer::evaluate(&cfg, p))
        });
        outcomes.push(outcome);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let evaluated: u64 = outcomes.iter().map(|o| o.evaluated).sum();
    let patterns_per_sec = evaluated as f64 / elapsed.max(1e-9);

    // Curves collapse to a hardness scalar: sum over thresholds of the
    // crossing point, with "never escaped" charged as budget+1.
    let hardness: Vec<u64> = outcomes
        .iter()
        .map(|o| o.curve.iter().map(|c| c.unwrap_or(budget + 1)).sum())
        .collect();

    let thresholds = outcomes[0].thresholds.clone();
    let mut headers: Vec<String> = vec!["tracker".into()];
    headers.extend(thresholds.iter().map(|t| format!("T={t}")));
    headers.push("hardness".into());
    headers.push("best/fixed".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (o, h) in outcomes.iter().zip(&hardness) {
        let mut row = vec![o.tracker.to_string()];
        row.extend(
            o.curve
                .iter()
                .map(|c| c.map_or_else(|| "-".into(), |a| a.to_string())),
        );
        row.push(h.to_string());
        row.push(format!("{}/{}", o.best.score(), o.best_fixed.score()));
        rows.push(row);
    }
    print_table(&header_refs, &rows);
    println!(
        "\n{evaluated} patterns evaluated in {elapsed:.2}s ({patterns_per_sec:.1}/s); \
         '-' = never escaped within the {budget}-activation budget"
    );

    // Gates: the eager oracle must be strictly hardest to escape, and every
    // real tracker's curve must carry signal (escape at the lowest
    // threshold). Both are skipped under `--tracker` (single-kind runs have
    // no cross-tracker ordering to check).
    let mut violations = Vec::new();
    let mut oracle_escape_margin = f64::NAN;
    if args.tracker.is_none() {
        let oracle_idx = kinds
            .iter()
            .position(|k| k.info().flags.oracle)
            .expect("registry has an oracle baseline");
        let oracle_hardness = hardness[oracle_idx];
        let mut max_real = 0u64;
        for (i, &kind) in kinds.iter().enumerate() {
            if i == oracle_idx {
                continue;
            }
            max_real = max_real.max(hardness[i]);
            if hardness[i] >= oracle_hardness {
                violations.push(format!(
                    "{kind} hardness {} >= oracle {}",
                    hardness[i], oracle_hardness
                ));
            }
            if outcomes[i].curve[0].is_none() {
                violations.push(format!(
                    "{kind} never escaped the lowest threshold T={} (no curve signal)",
                    thresholds[0]
                ));
            }
        }
        oracle_escape_margin = oracle_hardness as f64 / max_real.max(1) as f64;
        println!(
            "oracle hardness {oracle_hardness}; hardest real tracker {max_real}; \
             margin {oracle_escape_margin:.3}x"
        );
    }

    let fuzzer_beats_fixed = outcomes
        .iter()
        .filter(|o| o.best.score() >= o.best_fixed.score())
        .count();
    let strictly_better = outcomes
        .iter()
        .filter(|o| o.best.score() > o.best_fixed.score())
        .count();
    println!(
        "fuzzer matched-or-beat the best fixed shape on {fuzzer_beats_fixed}/{} trackers \
         ({strictly_better} strictly better)",
        outcomes.len()
    );

    for (o, h) in outcomes.iter().zip(&hardness) {
        let tracker = o.tracker.to_string();
        harness.gauge("fuzz_hardness", &[("tracker", &tracker)], *h as f64);
        harness.gauge(
            "fuzz_best_damage",
            &[("tracker", &tracker)],
            o.best.score() as f64,
        );
    }
    harness.gauge("fuzz_patterns_per_sec", &[], patterns_per_sec);
    harness.finish();

    let curves = Json::Obj(
        outcomes
            .iter()
            .map(|o| {
                (
                    o.tracker.to_string(),
                    Json::Arr(
                        o.curve
                            .iter()
                            .map(|c| c.map_or(Json::Null, |a| Json::Num(a as f64)))
                            .collect(),
                    ),
                )
            })
            .collect(),
    );
    let hardness_obj = Json::Obj(
        kinds
            .iter()
            .zip(&hardness)
            .map(|(k, h)| (k.to_string(), Json::Num(*h as f64)))
            .collect(),
    );
    let record = Json::obj(vec![
        ("pr", Json::Num(9.0)),
        ("patterns_per_sec", Json::Num(patterns_per_sec)),
        (
            "trackers",
            Json::Arr(kinds.iter().map(|k| Json::Str(k.to_string())).collect()),
        ),
        (
            "thresholds",
            Json::Arr(thresholds.iter().map(|&t| Json::Num(t as f64)).collect()),
        ),
        ("curves", curves),
        ("hardness", hardness_obj),
        ("oracle_escape_margin", Json::Num(oracle_escape_margin)),
        ("fuzzer_beats_fixed", Json::Num(fuzzer_beats_fixed as f64)),
    ]);
    println!("{}", record.to_compact());

    if !violations.is_empty() {
        eprintln!("attack_fuzz: escape-curve gate FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(2);
    }
}

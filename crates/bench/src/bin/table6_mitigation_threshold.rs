//! Table VI: slowdown and tolerated TRH-D for Recursive vs Fractal Mitigation
//! as AutoRFMTH varies.
//!
//! Paper: TH=4 → 3.1% slowdown, TRH-D 96 (recursive) / 74 (fractal);
//! TH=8 → 2.3%, 182 / 161.

use autorfm::analysis::MintModel;
use autorfm::experiments::Scenario;
use autorfm_bench::{
    banner, pct, print_table, Harness, ResultCache, RunOpts, SimJob, BASELINE_ZEN,
};

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner("Table VI: Recursive vs Fractal Mitigation", &opts);

    let ths = [4u32, 5, 6, 8];
    let paper = [
        (3.1, 96, 74),
        (2.8, 117, 96),
        (2.7, 139, 117),
        (2.3, 182, 161),
    ];
    let cache = ResultCache::new();
    let mut matrix: Vec<SimJob> = Vec::new();
    for spec in &opts.workloads {
        matrix.push((spec, BASELINE_ZEN));
        for &th in &ths {
            matrix.push((spec, Scenario::AutoRfm { th }));
            matrix.push((spec, Scenario::AutoRfmRecursive { th }));
        }
    }
    cache.prefetch(&matrix, &opts);
    let mut rows = Vec::new();

    for (i, th) in ths.iter().enumerate() {
        // Slowdown: fractal AutoRFM (the paper's headline column), averaged
        // across workloads.
        let mut s_fm = 0.0f64;
        let mut s_rm = 0.0f64;
        for spec in &opts.workloads {
            let base = cache.get(spec, BASELINE_ZEN, &opts);
            s_fm += cache
                .get(spec, Scenario::AutoRfm { th: *th }, &opts)
                .slowdown_vs(&base);
            s_rm += cache
                .get(spec, Scenario::AutoRfmRecursive { th: *th }, &opts)
                .slowdown_vs(&base);
        }
        let n = opts.workloads.len() as f64;
        let rm_trhd = MintModel::auto_rfm(*th, true).tolerated_trh_d();
        let fm_trhd = MintModel::auto_rfm(*th, false).tolerated_trh_d();
        let (p_slow, p_rm, p_fm) = paper[i];
        rows.push(vec![
            format!("{th}"),
            pct(s_fm / n),
            pct(s_rm / n),
            format!("{p_slow}%"),
            format!("{rm_trhd:.0}"),
            format!("{p_rm}"),
            format!("{fm_trhd:.0}"),
            format!("{p_fm}"),
        ]);
    }
    print_table(
        &[
            "AutoRFMTH",
            "slowdown(FM)",
            "slowdown(RM)",
            "paper slow",
            "RM TRH-D",
            "(paper)",
            "FM TRH-D",
            "(paper)",
        ],
        &rows,
    );

    harness.record_cache(&cache);
    harness.finish();
}

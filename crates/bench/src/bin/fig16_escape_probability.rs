//! Figure 16: escape probability as a function of damage, for Fractal
//! Mitigation and MINT-4 (Appendix-B model), plus the mixed-attack example.

use autorfm::analysis::FractalModel;
use autorfm_bench::print_table;

fn main() {
    println!("=== Figure 16: escape probability vs damage (Appendix B) ===\n");
    let fm = FractalModel::default();
    let rows: Vec<Vec<String>> = (0..=15)
        .map(|i| {
            let d = i as f64 * 10.0;
            vec![
                format!("{d:.0}"),
                format!("{:.2e}", fm.escape_probability(d)),
                format!("{:.2e}", FractalModel::mint_escape_probability(4, d)),
            ]
        })
        .collect();
    print_table(&["damage", "escape (FM)", "escape (MINT-4)"], &rows);

    println!(
        "\nThresholds at escape 1e-18: FM TRH-D = {:.0} (paper 52)",
        fm.tolerated_trh_d()
    );
    let mixed = fm.mixed_escape_probability(40.0, 4, 80.0);
    let pure = FractalModel::mint_escape_probability(4, 120.0);
    println!("Mixed attack (40 FM + 80 MINT): escape {mixed:.1e} vs {pure:.1e} all-MINT");
    println!("=> combining attacks is strictly weaker; direct attacks remain optimal.");
}

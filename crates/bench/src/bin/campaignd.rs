//! The campaign daemon: an always-on sweep server over a content-addressed
//! result store (see `autorfm_campaign` for the service itself).
//!
//! ```text
//! campaignd --store DIR [--addr A] [--port P] [--workers N] [--batch N] [--kernel K]
//! ```
//!
//! * `--store DIR` (required) — root of the cell store; campaign specs are
//!   persisted under `DIR/campaigns/` and auto-resumed on restart,
//! * `--addr A` — bind address (default `127.0.0.1`),
//! * `--port P` — bind port (default `0` = ephemeral),
//! * `--workers N`, `--batch N` — worker threads and lockstep lanes per
//!   work unit (defaults from `DaemonConfig::new`),
//! * `--kernel stepped|event` — simulation kernel (default: environment).
//!
//! On startup the bound address is printed to stdout as
//! `campaignd listening on ADDR` and written to `DIR/daemon.addr`, which is
//! how the `campaign` client's `--store DIR` flag finds the server. The
//! process serves until a `POST /shutdown` arrives.

use autorfm::KernelKind;
use autorfm_campaign::{serve, Daemon, DaemonConfig};
use std::net::TcpListener;
use std::path::PathBuf;

const USAGE: &str =
    "usage: campaignd --store DIR [--addr A] [--port P] [--workers N] [--batch N] [--kernel K]";

fn main() {
    let mut store: Option<PathBuf> = None;
    let mut addr = "127.0.0.1".to_string();
    let mut port: u16 = 0;
    let mut workers: Option<usize> = None;
    let mut batch: Option<usize> = None;
    let mut kernel: Option<KernelKind> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store = Some(args.next().expect("--store needs a directory").into()),
            "--addr" => addr = args.next().expect("--addr needs an address"),
            "--port" => {
                port = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--port needs a port number");
            }
            "--workers" => {
                workers = Some(
                    args.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .map(|n| n.max(1))
                        .expect("--workers needs a positive number"),
                );
            }
            "--batch" => {
                batch = Some(
                    args.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .map(|n| n.max(1))
                        .expect("--batch needs a positive number"),
                );
            }
            "--kernel" => {
                let v = args.next().expect("--kernel needs stepped|event");
                kernel = Some(
                    KernelKind::parse(&v)
                        .unwrap_or_else(|| panic!("--kernel: unknown kernel {v} (stepped|event)")),
                );
            }
            other => panic!("unknown flag {other}; {USAGE}"),
        }
    }
    let store = store.unwrap_or_else(|| panic!("--store is required; {USAGE}"));

    let mut cfg = DaemonConfig::new(&store);
    if let Some(n) = workers {
        cfg.workers = n;
    }
    if let Some(n) = batch {
        cfg.batch = n;
    }
    if let Some(k) = kernel {
        cfg.kernel = k;
    }
    let daemon = Daemon::start(cfg).expect("start campaign daemon");
    let listener = TcpListener::bind((addr.as_str(), port)).expect("bind campaign daemon listener");
    let local = listener.local_addr().expect("read bound address");
    // The client's `--store DIR` flag reads the address back from here.
    if let Err(e) = std::fs::write(store.join("daemon.addr"), format!("{local}\n")) {
        eprintln!("warning: could not write daemon.addr: {e}");
    }
    println!("campaignd listening on {local}");
    serve(&daemon, listener).expect("serve campaign daemon");
    daemon.stop();
}

//! Seed-sensitivity study: how stable are the headline slowdowns across RNG
//! seeds? Reports mean ± population standard deviation over several seeds for
//! RFM-4 and AutoRFM-4, plus the DoS-relevant worst-case read latency.

use autorfm::experiments::Scenario;
use autorfm::{MappingKind, SimConfig, System};
use autorfm_bench::{banner, print_table, RunOpts};
use autorfm_workloads::WorkloadSpec;

const SEEDS: &[u64] = &[42, 1337, 2024, 7, 99];

fn slowdowns(spec: &'static WorkloadSpec, scenario: Scenario, opts: &RunOpts) -> (f64, f64, u64) {
    let mut values = Vec::new();
    let mut worst_latency = 0u64;
    for &seed in SEEDS {
        let mk = |s| {
            SimConfig::scenario(spec, s)
                .with_cores(opts.cores)
                .with_instructions(opts.instructions)
                .with_seed(seed)
        };
        let base = System::new(mk(Scenario::Baseline {
            mapping: MappingKind::Zen,
        }))
        .expect("valid config")
        .run();
        let mut sys = System::new(mk(scenario)).expect("valid config");
        let r = sys.run();
        values.push(r.slowdown_vs(&base));
        worst_latency = worst_latency.max(sys.mc().stats().max_read_latency.get() / 4);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt(), worst_latency)
}

fn main() {
    let mut opts = RunOpts::from_args();
    if opts.workloads.len() > 6 {
        // Five seeds x two scenarios x baseline: keep the default set small.
        opts.workloads.truncate(6);
    }
    banner("Seed sensitivity (5 seeds): mean ± std of slowdown", &opts);
    let mut rows = Vec::new();
    for spec in &opts.workloads {
        let (rfm_m, rfm_s, _) = slowdowns(spec, Scenario::Rfm { th: 4 }, &opts);
        let (auto_m, auto_s, worst) = slowdowns(spec, Scenario::AutoRfm { th: 4 }, &opts);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.1}% ± {:.1}", rfm_m * 100.0, rfm_s * 100.0),
            format!("{:.1}% ± {:.1}", auto_m * 100.0, auto_s * 100.0),
            format!("{worst} ns"),
        ]);
    }
    print_table(
        &["workload", "RFM-4", "AutoRFM-4", "worst read latency"],
        &rows,
    );
    println!("\nThe worst-case latency bounds the DoS exposure: an ALERTed ACT adds at");
    println!("most ~200 ns, so the tail should stay within a few retry windows.");
}

//! Seed-sensitivity study: how stable are the headline slowdowns across RNG
//! seeds? Reports mean ± population standard deviation over several seeds for
//! RFM-4 and AutoRFM-4, plus the DoS-relevant worst-case read latency.

use autorfm::experiments::Scenario;
use autorfm::telemetry::Json;
use autorfm::{MappingKind, SimConfig, System};
use autorfm_bench::{banner, par_map, print_table, Harness, RunOpts};
use autorfm_workloads::WorkloadSpec;

const SEEDS: &[u64] = &[42, 1337, 2024, 7, 99];
const SCENARIOS: [Scenario; 2] = [Scenario::Rfm { th: 4 }, Scenario::AutoRfm { th: 4 }];

/// One grid cell: a (workload, scenario, seed) triple simulated against its
/// own same-seed baseline. Returns the slowdown and the worst read latency
/// of the mitigated run (in ns).
fn cell(spec: &'static WorkloadSpec, scenario: Scenario, seed: u64, opts: &RunOpts) -> (f64, u64) {
    let mk = |s| {
        SimConfig::builder(spec)
            .scenario(s)
            .cores(opts.cores)
            .instructions(opts.instructions)
            .seed(seed)
            .build()
            .expect("valid config")
    };
    let base = System::new(mk(Scenario::Baseline {
        mapping: MappingKind::Zen,
    }))
    .expect("valid config")
    .run();
    let mut sys = System::new(mk(scenario)).expect("valid config");
    let r = sys.run();
    (
        r.slowdown_vs(&base),
        sys.mc().stats().max_read_latency.get() / 4,
    )
}

/// Mean, population std-dev, and worst latency over the per-seed cells,
/// accumulated in seed order (identical to the serial loop).
fn stats(cells: &[(f64, u64)]) -> (f64, f64, u64) {
    let mean = cells.iter().map(|c| c.0).sum::<f64>() / cells.len() as f64;
    let var = cells.iter().map(|c| (c.0 - mean).powi(2)).sum::<f64>() / cells.len() as f64;
    let worst = cells.iter().fold(0u64, |w, c| w.max(c.1));
    (mean, var.sqrt(), worst)
}

fn main() {
    let mut opts = RunOpts::from_args();
    if opts.workloads.len() > 6 {
        // Five seeds x two scenarios x baseline: keep the default set small.
        opts.workloads.truncate(6);
    }
    banner("Seed sensitivity (5 seeds): mean ± std of slowdown", &opts);
    let mut harness = Harness::new(&opts);
    harness.set_config(
        "seeds",
        Json::Arr(SEEDS.iter().map(|&s| Json::Num(s as f64)).collect()),
    );

    // Every (workload, scenario, seed) cell is independent, so fan the whole
    // grid out at once and re-assemble the per-workload statistics afterwards.
    let grid: Vec<(&'static WorkloadSpec, Scenario, u64)> = opts
        .workloads
        .iter()
        .flat_map(|&spec| {
            SCENARIOS
                .iter()
                .flat_map(move |&sc| SEEDS.iter().map(move |&seed| (spec, sc, seed)))
        })
        .collect();
    let results = par_map(&grid, opts.jobs, |&(spec, scenario, seed)| {
        cell(spec, scenario, seed, &opts)
    });

    let per_scenario = SEEDS.len();
    let mut rows = Vec::new();
    for (wi, spec) in opts.workloads.iter().enumerate() {
        let at = wi * SCENARIOS.len() * per_scenario;
        let (rfm_m, rfm_s, _) = stats(&results[at..at + per_scenario]);
        let (auto_m, auto_s, worst) = stats(&results[at + per_scenario..at + 2 * per_scenario]);
        for (scenario, mean, std) in [("RFM-4", rfm_m, rfm_s), ("AutoRFM-4", auto_m, auto_s)] {
            let labels = [("workload", spec.name), ("scenario", scenario)];
            harness.gauge("slowdown_mean", &labels, mean);
            harness.gauge("slowdown_std", &labels, std);
        }
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.1}% ± {:.1}", rfm_m * 100.0, rfm_s * 100.0),
            format!("{:.1}% ± {:.1}", auto_m * 100.0, auto_s * 100.0),
            format!("{worst} ns"),
        ]);
    }
    print_table(
        &["workload", "RFM-4", "AutoRFM-4", "worst read latency"],
        &rows,
    );
    println!("\nThe worst-case latency bounds the DoS exposure: an ALERTed ACT adds at");
    println!("most ~200 ns, so the tail should stay within a few retry windows.");
    harness.finish();
}

//! Security validation: Monte-Carlo attacks against the real tracker +
//! mitigation implementations, compared with the analytical bounds.
//!
//! For each configuration we run the full adversarial pattern suite and report
//! the worst damage any row accumulated; the attack *fails* as long as that
//! stays below `T = 2 × TRH-D` of the Appendix-A model.

use autorfm::analysis::{AttackSim, FractalModel, MintModel};
use autorfm::mitigation::MitigationKind;
use autorfm::sim_core::RowAddr;
use autorfm::trackers::TrackerKind;
use autorfm::workloads::{AttackPattern, AttackStream};
use autorfm_bench::print_table;

fn worst_damage(
    tracker: TrackerKind,
    policy: MitigationKind,
    window: u32,
    acts: u64,
) -> (u64, &'static str) {
    let patterns = [
        (
            "circular",
            AttackPattern::Circular {
                base: RowAddr(10_000),
                window,
            },
        ),
        (
            "double-sided",
            AttackPattern::DoubleSided {
                victim: RowAddr(20_000),
            },
        ),
        (
            "single-sided",
            AttackPattern::SingleSided {
                aggressor: RowAddr(25_000),
            },
        ),
        (
            "half-double",
            AttackPattern::HalfDouble {
                victim: RowAddr(40_000),
                near_ratio: 2,
            },
        ),
        (
            "decoy",
            AttackPattern::Decoy {
                aggressor: RowAddr(30_000),
                decoys: 3,
            },
        ),
    ];
    let mut worst = (0u64, "none");
    for (i, (name, pattern)) in patterns.into_iter().enumerate() {
        let mut sim = AttackSim::new(tracker, policy, window, 131_072, 1234 + i as u64)
            .expect("valid config");
        let report = sim.run_pattern(&mut AttackStream::new(pattern), acts);
        if report.max_damage > worst.0 {
            worst = (report.max_damage, name);
        }
    }
    worst
}

fn main() {
    println!("=== Security Monte-Carlo: worst-case damage vs analytic bound ===\n");
    let acts = 1_000_000;
    let mut rows = Vec::new();
    for (label, tracker, policy, window, bound) in [
        (
            "MINT-4 + Fractal (AutoRFM-4)",
            TrackerKind::Mint,
            MitigationKind::Fractal,
            4u32,
            2.0 * MintModel::auto_rfm(4, false).tolerated_trh_d(),
        ),
        (
            "MINT-8 + Fractal (AutoRFM-8)",
            TrackerKind::Mint,
            MitigationKind::Fractal,
            8,
            2.0 * MintModel::auto_rfm(8, false).tolerated_trh_d(),
        ),
        (
            "MINT-4 + Recursive",
            TrackerKind::MintRecursive,
            MitigationKind::Recursive,
            4,
            2.0 * MintModel::auto_rfm(4, true).tolerated_trh_d(),
        ),
        (
            "naive TRR + Fractal (broken)",
            TrackerKind::NaiveTrr,
            MitigationKind::Fractal,
            4,
            2.0 * MintModel::auto_rfm(4, false).tolerated_trh_d(),
        ),
    ] {
        let (damage, pattern) = worst_damage(tracker, policy, window, acts);
        let verdict = if (damage as f64) < bound {
            "SAFE"
        } else {
            "BROKEN"
        };
        rows.push(vec![
            label.to_string(),
            format!("{damage}"),
            format!("{bound:.0}"),
            pattern.to_string(),
            verdict.to_string(),
        ]);
    }
    print_table(
        &[
            "configuration",
            "worst damage",
            "bound (2xTRH-D)",
            "worst pattern",
            "verdict",
        ],
        &rows,
    );
    println!(
        "\nFractal-only attack bound (Appendix B): TRH-D {:.0} — below AutoRFM's minimum 74.",
        FractalModel::default().tolerated_trh_d()
    );
    println!(
        "The naive deterministic tracker must show BROKEN (motivates probabilistic trackers)."
    );
}

//! Figure 11: RFM vs AutoRFM slowdown at thresholds 4 and 8.
//!
//! Paper averages: RFM-4 33%, RFM-8 12.9%, AutoRFM-4 3.1%, AutoRFM-8 2.3%.

use autorfm::experiments::Scenario;
use autorfm_bench::{
    banner, pct, print_table, Harness, ResultCache, RunOpts, SimJob, BASELINE_ZEN,
};

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner("Figure 11: RFM vs AutoRFM", &opts);

    let scenarios = [
        ("RFM-4", Scenario::Rfm { th: 4 }),
        ("RFM-8", Scenario::Rfm { th: 8 }),
        ("AutoRFM-4", Scenario::AutoRfm { th: 4 }),
        ("AutoRFM-8", Scenario::AutoRfm { th: 8 }),
    ];
    let cache = ResultCache::new();
    let mut matrix: Vec<SimJob> = Vec::new();
    for spec in &opts.workloads {
        matrix.push((spec, BASELINE_ZEN));
        matrix.extend(scenarios.iter().map(|&(_, scen)| (*spec, scen)));
    }
    cache.prefetch(&matrix, &opts);
    let mut rows = Vec::new();
    let mut sums = vec![0.0f64; scenarios.len()];

    for spec in &opts.workloads {
        let base = cache.get(spec, BASELINE_ZEN, &opts);
        let mut row = vec![spec.name.to_string()];
        for (i, (_, scen)) in scenarios.iter().enumerate() {
            let s = cache.get(spec, *scen, &opts).slowdown_vs(&base);
            sums[i] += s;
            row.push(pct(s));
        }
        rows.push(row);
    }
    let n = opts.workloads.len() as f64;
    let mut avg = vec!["AVERAGE".to_string()];
    avg.extend(sums.iter().map(|s| pct(s / n)));
    rows.push(avg);
    rows.push(vec![
        "paper avg".into(),
        "33.0%".into(),
        "12.9%".into(),
        "3.1%".into(),
        "2.3%".into(),
    ]);

    let headers: Vec<&str> = std::iter::once("workload")
        .chain(scenarios.iter().map(|(n, _)| *n))
        .collect();
    print_table(&headers, &rows);

    let chart: Vec<(String, f64)> = scenarios
        .iter()
        .zip(&sums)
        .map(|((name, _), s)| (name.to_string(), s / n))
        .collect();
    autorfm_bench::bar_chart("average slowdown", &chart, pct);

    harness.record_cache(&cache);
    harness.finish();
}

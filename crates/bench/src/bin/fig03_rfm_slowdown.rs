//! Figure 3 / Figure 1(d): performance impact of conventional RFM.
//!
//! Regenerates the per-workload slowdown of RFM-4/8/16/32 relative to the
//! no-mitigation Zen baseline. Paper averages: 33%, 12.9%, 4.4%, 0.2%.

use autorfm::experiments::Scenario;
use autorfm_bench::{
    banner, pct, print_table, Harness, ResultCache, RunOpts, SimJob, BASELINE_ZEN,
};

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner(
        "Figure 3: slowdown of RFM-N vs no-mitigation baseline",
        &opts,
    );

    let ths = [4u32, 8, 16, 32];
    let cache = ResultCache::new();
    let mut matrix: Vec<SimJob> = Vec::new();
    for spec in &opts.workloads {
        matrix.push((spec, BASELINE_ZEN));
        matrix.extend(ths.iter().map(|&th| (*spec, Scenario::Rfm { th })));
    }
    cache.prefetch(&matrix, &opts);
    let mut rows = Vec::new();
    let mut sums = vec![0.0f64; ths.len()];

    for spec in &opts.workloads {
        let base = cache.get(spec, BASELINE_ZEN, &opts);
        let mut row = vec![spec.name.to_string()];
        for (i, th) in ths.iter().enumerate() {
            let r = cache.get(spec, Scenario::Rfm { th: *th }, &opts);
            let s = r.slowdown_vs(&base);
            sums[i] += s;
            row.push(pct(s));
        }
        rows.push(row);
    }
    let n = opts.workloads.len() as f64;
    let mut avg = vec!["AVERAGE".to_string()];
    avg.extend(sums.iter().map(|s| pct(s / n)));
    rows.push(avg);
    rows.push(vec![
        "paper avg".into(),
        "33.0%".into(),
        "12.9%".into(),
        "4.4%".into(),
        "0.2%".into(),
    ]);
    print_table(&["workload", "RFM-4", "RFM-8", "RFM-16", "RFM-32"], &rows);
    let chart: Vec<(String, f64)> = ths
        .iter()
        .zip(&sums)
        .map(|(th, s)| (format!("RFM-{th}"), s / n))
        .collect();
    autorfm_bench::bar_chart("average slowdown", &chart, pct);

    harness.record_cache(&cache);
    harness.finish();
}

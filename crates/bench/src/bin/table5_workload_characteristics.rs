//! Table V: workload characteristics (ACT-PKI and ACT-per-tREFI per bank)
//! measured on the baseline system, against the paper's reported values.

use autorfm_bench::{banner, print_table, run_matrix, Harness, RunOpts, SimJob, BASELINE_ZEN};

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner(
        "Table V: workload characteristics (baseline Zen system)",
        &opts,
    );

    let matrix: Vec<SimJob> = opts.workloads.iter().map(|&s| (s, BASELINE_ZEN)).collect();
    let results = run_matrix(&matrix, &opts);
    let mut rows = Vec::new();
    for (spec, r) in opts.workloads.iter().zip(&results) {
        rows.push(vec![
            spec.suite.to_string(),
            spec.name.to_string(),
            format!("{:.1}", r.act_pki),
            format!("{:.1}", spec.paper_act_pki),
            format!("{:.1}", r.act_per_trefi_per_bank),
            format!("{:.1}", spec.paper_act_per_trefi),
            format!("{:.3}", r.row_hit_rate),
        ]);
    }
    print_table(
        &[
            "suite",
            "workload",
            "ACT-PKI",
            "(paper)",
            "ACT/tREFI",
            "(paper)",
            "row-hit",
        ],
        &rows,
    );
    println!("\nNote: measured ACT-PKI includes writeback activations and reflects the");
    println!("ROB-model IPC; the paper's trend across workloads is what should match.");

    for ((spec, scenario), r) in matrix.iter().zip(&results) {
        harness.record(&format!("{}/{scenario}", spec.name), r);
    }
    harness.finish();
}

//! Inspect, digest, and diff sealed snapshot files (`*.ckpt`, warm and
//! system snapshots — anything written through `autorfm_snapshot::seal`).
//!
//! ```text
//! snapshot_tool inspect <file>
//!     Print kind, format version, payload size, and digest; for results
//!     checkpoints, list every stored simulation.
//!
//! snapshot_tool digest <file>
//!     Print the 64-bit payload digest as 16 hex digits (the golden-test
//!     fingerprint) and nothing else.
//!
//! snapshot_tool diff <a> <b>
//!     Compare two snapshot files. Exit 0 when the payloads are identical,
//!     1 when they differ, 2 on error. For results checkpoints the diff is
//!     per-entry; otherwise it reports the first diverging payload byte.
//! ```

use autorfm::snapshot::{kind_name, read_file, Container, Reader, Snapshot, KIND_RESULTS};
use autorfm::SimResult;
use autorfm_bench::decode_results;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

/// Why a subcommand stopped: output failed (e.g. stdout closed by `head`,
/// which is a success, not an error) or a hard failure with an exit code.
enum Stop {
    Io(std::io::Error),
    Exit(u8),
}

impl From<std::io::Error> for Stop {
    fn from(e: std::io::Error) -> Self {
        Stop::Io(e)
    }
}

type Out<'a> = std::io::BufWriter<std::io::StdoutLock<'a>>;

fn usage() -> ExitCode {
    eprintln!(
        "usage: snapshot_tool inspect <file>\n\
         \x20      snapshot_tool digest <file>\n\
         \x20      snapshot_tool diff <a> <b>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Container, Stop> {
    read_file(Path::new(path)).map_err(|e| {
        eprintln!("error: {path}: {e}");
        Stop::Exit(2)
    })
}

/// One-line description of a stored result entry.
fn describe_entry(bytes: &[u8]) -> String {
    match SimResult::decode(&mut Reader::new(bytes)) {
        Ok(r) => format!(
            "{:<14} elapsed {:>12} ns  acts {:>9}  perf {:.3}",
            r.workload,
            r.elapsed.as_ns(),
            r.dram.acts.get(),
            r.perf()
        ),
        Err(e) => format!("<undecodable: {e}>"),
    }
}

fn inspect(out: &mut Out, path: &str) -> Result<(), Stop> {
    let c = load(path)?;
    writeln!(out, "file      : {path}")?;
    writeln!(out, "kind      : {} ({})", c.kind, kind_name(c.kind))?;
    writeln!(out, "version   : {}", c.version)?;
    writeln!(out, "payload   : {} bytes", c.payload.len())?;
    writeln!(out, "digest    : {:016x}", c.digest)?;
    if c.kind == KIND_RESULTS {
        match decode_results(&c.payload) {
            Ok(entries) => {
                writeln!(out, "entries   : {}", entries.len())?;
                for (key, bytes) in &entries {
                    writeln!(out, "  {key:016x}  {}", describe_entry(bytes))?;
                }
            }
            Err(e) => {
                eprintln!("error: cannot decode results map: {e}");
                return Err(Stop::Exit(2));
            }
        }
    }
    Ok(())
}

fn digest(out: &mut Out, path: &str) -> Result<(), Stop> {
    let c = load(path)?;
    writeln!(out, "{:016x}", c.digest)?;
    Ok(())
}

/// Diffs two results checkpoints entry by entry.
fn diff_results(
    out: &mut Out,
    a: &BTreeMap<u64, Vec<u8>>,
    b: &BTreeMap<u64, Vec<u8>>,
) -> Result<bool, Stop> {
    let mut same = true;
    for key in a
        .keys()
        .chain(b.keys())
        .collect::<std::collections::BTreeSet<_>>()
    {
        match (a.get(key), b.get(key)) {
            (Some(x), Some(y)) if x == y => {}
            (Some(_), Some(_)) => {
                writeln!(out, "~ {key:016x}  entries differ")?;
                same = false;
            }
            (Some(_), None) => {
                writeln!(out, "- {key:016x}  only in first")?;
                same = false;
            }
            (None, Some(_)) => {
                writeln!(out, "+ {key:016x}  only in second")?;
                same = false;
            }
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
    Ok(same)
}

fn diff(out: &mut Out, path_a: &str, path_b: &str) -> Result<bool, Stop> {
    let (a, b) = (load(path_a)?, load(path_b)?);
    if a.kind != b.kind {
        writeln!(
            out,
            "kinds differ: {} ({}) vs {} ({})",
            a.kind,
            kind_name(a.kind),
            b.kind,
            kind_name(b.kind)
        )?;
        return Ok(false);
    }
    if a.payload == b.payload {
        writeln!(
            out,
            "identical ({} bytes, digest {:016x})",
            a.payload.len(),
            a.digest
        )?;
        return Ok(true);
    }
    writeln!(
        out,
        "digests differ: {:016x} vs {:016x}",
        a.digest, b.digest
    )?;
    if a.kind == KIND_RESULTS {
        if let (Ok(ma), Ok(mb)) = (decode_results(&a.payload), decode_results(&b.payload)) {
            return diff_results(out, &ma, &mb);
        }
    }
    let common = a.payload.len().min(b.payload.len());
    let at = (0..common)
        .find(|&i| a.payload[i] != b.payload[i])
        .unwrap_or(common);
    writeln!(
        out,
        "payloads diverge at byte {at} (sizes {} vs {})",
        a.payload.len(),
        b.payload.len()
    )?;
    Ok(false)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let result = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["inspect", path] => inspect(&mut out, path).map(|()| true),
        ["digest", path] => digest(&mut out, path).map(|()| true),
        ["diff", a, b] => diff(&mut out, a, b),
        _ => return usage(),
    };
    let result = result.and_then(|ok| {
        out.flush()?;
        Ok(ok)
    });
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        // A closed pipe (`snapshot_tool inspect x | head`) is the reader
        // saying "enough", not a failure.
        Err(Stop::Io(e)) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(Stop::Io(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
        Err(Stop::Exit(code)) => ExitCode::from(code),
    }
}

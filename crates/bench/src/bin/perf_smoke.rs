//! Parallel-harness smoke benchmark: times a fixed quick (workload × scenario)
//! matrix through `run_matrix` serially and with the requested `--jobs`, then
//! emits a single JSON line:
//!
//! ```text
//! {"serial_s":12.34,"parallel_s":3.21,"jobs":8,"host_parallelism":16,
//!  "sim_cycles":123456789,"cycles_per_sec":38460000.0}
//! ```
//!
//! `sim_cycles` is the total simulated CPU-cycle count of the matrix and
//! `cycles_per_sec` the parallel-pass simulation throughput.
//!
//! Used by `scripts/verify.sh` (and by hand) to confirm the fan-out actually
//! buys wall-clock time on multi-core hosts. The parallel pass must also
//! produce bitwise-identical results to the serial pass — this binary asserts
//! that before reporting the timings.

use autorfm::experiments::Scenario;
use autorfm_bench::{run_matrix, RunOpts, SimJob, BASELINE_ZEN};
use std::time::Instant;

fn main() {
    let opts = RunOpts::from_args();

    // Fixed quick matrix: enough independent cells to keep every worker busy,
    // small enough to finish in seconds.
    let mut quick = opts.clone();
    quick.cores = 2;
    quick.instructions = 5_000;
    let matrix: Vec<SimJob> = quick
        .workloads
        .iter()
        .flat_map(|&spec| {
            [
                (spec, BASELINE_ZEN),
                (spec, Scenario::Rfm { th: 4 }),
                (spec, Scenario::AutoRfm { th: 4 }),
            ]
        })
        .collect();

    let mut serial = quick.clone();
    serial.jobs = 1;
    let t0 = Instant::now();
    let serial_results = run_matrix(&matrix, &serial);
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel_results = run_matrix(&matrix, &quick);
    let parallel_s = t1.elapsed().as_secs_f64();

    assert_eq!(
        serial_results.len(),
        parallel_results.len(),
        "result count must not depend on --jobs"
    );
    for (i, (s, p)) in serial_results.iter().zip(&parallel_results).enumerate() {
        assert!(
            s.elapsed == p.elapsed
                && s.dram.acts.get() == p.dram.acts.get()
                && s.dram.alerts.get() == p.dram.alerts.get()
                && s.per_core_ipc == p.per_core_ipc,
            "parallel result {i} diverged from serial"
        );
    }

    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let sim_cycles: u64 = parallel_results.iter().map(|r| r.elapsed.raw()).sum();
    let cycles_per_sec = if parallel_s > 0.0 {
        sim_cycles as f64 / parallel_s
    } else {
        0.0
    };
    println!(
        "{{\"serial_s\":{serial_s:.3},\"parallel_s\":{parallel_s:.3},\"jobs\":{},\
         \"host_parallelism\":{host},\"sim_cycles\":{sim_cycles},\
         \"cycles_per_sec\":{cycles_per_sec:.0}}}",
        quick.jobs
    );
}

//! Harness smoke benchmark: times the parallel fan-out and the warm-fork
//! machinery on a fixed quick (workload × scenario) matrix, then emits a
//! single JSON line:
//!
//! ```text
//! {"serial_s":12.34,"parallel_s":3.21,"jobs":8,"host_parallelism":16,
//!  "sim_cycles":123456789,"cycles_per_sec":38460000.0,
//!  "warm_prefetch_s":0.42,"cold_s":2.10,"forked_s":0.95,
//!  "warm_fork_saved_s":1.15}
//! ```
//!
//! Five measurements:
//!
//! * **serial vs parallel** — the same matrix through `run_matrix` with one
//!   worker and with `--jobs` workers. Warm snapshots for every workload are
//!   prefetched first (`warm_prefetch_s`), so both passes pay identical
//!   (zero) warmup cost and the comparison isolates the fan-out.
//! * **cold vs forked** — a sub-matrix simulated with per-run warmup
//!   (`run_cold`) and again by forking from the shared warm snapshots
//!   (`run`). `warm_fork_saved_s = cold_s - forked_s` is the measured
//!   wall-clock win of warmup forking.
//! * **stepped vs event kernel** — every workload once per kernel
//!   (`stepped_s`/`event_s`/`kernel_skip_ratio`, plus a per-workload
//!   breakdown under `"kernels"`). Results must be bitwise identical; any
//!   mismatch or panic exits nonzero before any JSON is emitted.
//! * **batched vs sequential** — eight same-shape scenario lanes per
//!   workload as one `SimBatch` and as eight standalone runs, timed end to
//!   end (`batch_s`/`batch_seq_s`/`batch_speedup`, per-workload rows under
//!   `"batches"`). Every lane must match its standalone run bitwise.
//!
//! All comparisons assert bitwise-identical results before reporting, so
//! this binary is also an end-to-end determinism check for the parallel
//! harness, the snapshot subsystem, the time-skip kernel, and the batched
//! lockstep engine. Used by `scripts/verify.sh`.

use autorfm::experiments::Scenario;
use autorfm::{KernelKind, SimBatch, SimConfig, SimResult, System};
use autorfm_bench::{
    run, run_cold, run_matrix_cached, warm_cache, ResultCache, RunOpts, SimJob, BASELINE_RUBIX,
    BASELINE_ZEN,
};
use std::time::Instant;

/// Runs `cfg` (forked from the shared warm cache) under `kernel`, timing the
/// measured phase. Returns `(result, seconds, (steps_executed, steps_skipped))`.
/// A panic inside the simulation aborts the whole benchmark with a nonzero
/// exit instead of emitting partial JSON.
fn timed_kernel_run(cfg: SimConfig, kernel: KernelKind) -> (SimResult, f64, (u64, u64)) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sys = warm_cache().system(cfg);
        let t = Instant::now();
        let r = sys.run_with(kernel);
        (r, t.elapsed().as_secs_f64(), sys.kernel_stats())
    }));
    match outcome {
        Ok(v) => v,
        Err(_) => {
            eprintln!("perf_smoke: {} kernel run panicked", kernel.name());
            std::process::exit(1);
        }
    }
}

fn main() {
    let opts = RunOpts::from_args();

    // Fixed quick matrix: enough independent cells to keep every worker busy,
    // small enough to finish in seconds.
    let mut quick = opts.clone();
    quick.cores = 2;
    quick.instructions = 5_000;
    let matrix: Vec<SimJob> = quick
        .workloads
        .iter()
        .flat_map(|&spec| {
            [
                (spec, BASELINE_ZEN),
                (spec, Scenario::Rfm { th: 4 }),
                (spec, Scenario::AutoRfm { th: 4 }),
            ]
        })
        .collect();

    // Prefetch warm snapshots for every workload so the serial and parallel
    // passes below pay the same (zero) warmup cost.
    let t_warm = Instant::now();
    for &spec in &quick.workloads {
        let cfg = SimConfig::builder(spec)
            .scenario(BASELINE_ZEN)
            .cores(quick.cores)
            .instructions(quick.instructions)
            .build()
            .expect("valid quick config");
        drop(warm_cache().system(cfg));
    }
    let warm_prefetch_s = t_warm.elapsed().as_secs_f64();

    // Isolated caches: a checkpoint reload would collapse the timings.
    let mut serial = quick.clone();
    serial.jobs = 1;
    let t0 = Instant::now();
    let serial_results = run_matrix_cached(&matrix, &serial, &ResultCache::isolated());
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel_results = run_matrix_cached(&matrix, &quick, &ResultCache::isolated());
    let parallel_s = t1.elapsed().as_secs_f64();

    assert_eq!(
        serial_results.len(),
        parallel_results.len(),
        "result count must not depend on --jobs"
    );
    for (i, (s, p)) in serial_results.iter().zip(&parallel_results).enumerate() {
        assert!(
            s.elapsed == p.elapsed
                && s.dram.acts.get() == p.dram.acts.get()
                && s.dram.alerts.get() == p.dram.alerts.get()
                && s.per_core_ipc == p.per_core_ipc,
            "parallel result {i} diverged from serial"
        );
    }

    // Warm-fork A/B: the same sub-matrix with per-run warmup vs forking from
    // the (already prefetched) shared warm snapshots. Serial on both sides so
    // the delta is pure warmup cost.
    let sub: Vec<SimJob> = matrix.iter().copied().take(18).collect();
    let t2 = Instant::now();
    let cold_results: Vec<_> = sub
        .iter()
        .map(|&(spec, sc)| run_cold(spec, sc, &quick))
        .collect();
    let cold_s = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let forked_results: Vec<_> = sub
        .iter()
        .map(|&(spec, sc)| run(spec, sc, &quick))
        .collect();
    let forked_s = t3.elapsed().as_secs_f64();
    for (i, (c, f)) in cold_results.iter().zip(&forked_results).enumerate() {
        assert!(
            c.elapsed == f.elapsed
                && c.dram.acts.get() == f.dram.acts.get()
                && c.per_core_ipc == f.per_core_ipc,
            "warm-forked result {i} diverged from cold"
        );
    }

    // Kernel A/B: every workload under AutoRFM-4, once per kernel. The event
    // kernel must reproduce the stepped kernel's results bitwise; wall-clock
    // and the skip ratio quantify the time-skip win. Single-core runs give
    // the cleanest skip windows (every memory stall idles the whole machine),
    // and a larger instruction budget keeps each timing above clock noise.
    // Timings are min-of-3 with the kernels interleaved (stepped, event,
    // stepped, event, ...) so a frequency ramp or scheduler hiccup hits both
    // sides alike instead of biasing whichever ran second.
    const KERNEL_REPS: usize = 3;
    let mut kernel_rows = Vec::new();
    let (mut stepped_s, mut event_s) = (0.0f64, 0.0f64);
    let (mut total_executed, mut total_skipped) = (0u64, 0u64);
    let mut geomean_log = 0.0f64;
    for &spec in &quick.workloads {
        let cfg = SimConfig::builder(spec)
            .scenario(Scenario::AutoRfm { th: 4 })
            .cores(1)
            .instructions(quick.instructions * 48)
            .build()
            .expect("valid quick config");
        let (mut t_stepped, mut t_event) = (f64::MAX, f64::MAX);
        let (mut executed, mut skipped) = (0u64, 0u64);
        for _ in 0..KERNEL_REPS {
            let (r_stepped, ts, _) = timed_kernel_run(cfg.clone(), KernelKind::Stepped);
            let (r_event, te, stats) = timed_kernel_run(cfg.clone(), KernelKind::Event);
            t_stepped = t_stepped.min(ts);
            t_event = t_event.min(te);
            (executed, skipped) = stats;
            if r_stepped.elapsed != r_event.elapsed
                || r_stepped.dram.acts.get() != r_event.dram.acts.get()
                || r_stepped.dram.alerts.get() != r_event.dram.alerts.get()
                || r_stepped.per_core_ipc != r_event.per_core_ipc
            {
                eprintln!(
                    "perf_smoke: event kernel diverged from stepped on {}",
                    spec.name
                );
                std::process::exit(1);
            }
        }
        stepped_s += t_stepped;
        event_s += t_event;
        total_executed += executed;
        total_skipped += skipped;
        let skip_ratio = skipped as f64 / (executed + skipped).max(1) as f64;
        let speedup = if t_event > 0.0 {
            t_stepped / t_event
        } else {
            0.0
        };
        geomean_log += speedup.max(f64::MIN_POSITIVE).ln();
        kernel_rows.push(format!(
            "{{\"workload\":\"{}\",\"stepped_s\":{t_stepped:.3},\"event_s\":{t_event:.3},\
             \"speedup\":{speedup:.2},\"skip_ratio\":{skip_ratio:.3}}}",
            spec.name,
        ));
    }
    let kernel_skip_ratio = total_skipped as f64 / (total_executed + total_skipped).max(1) as f64;
    let geomean_speedup = (geomean_log / quick.workloads.len().max(1) as f64).exp();

    // Batched A/B: eight same-shape scenario lanes per workload, once as a
    // SimBatch and once as eight standalone systems. Both sides are timed
    // end to end — construction, warmup, and run — because amortizing warmup
    // and trace generation across lanes is exactly what batching buys; the
    // standalone side deliberately pays the cold path a sweep without the
    // harness caches would pay. The per-lane budget keeps the total
    // instruction count equal to one kernel-A/B cell, and the same
    // interleaved min-of-N discipline applies. Lanes must reproduce their
    // standalone results bitwise or the benchmark exits nonzero.
    const BATCH_LANES: [Scenario; 8] = [
        BASELINE_ZEN,
        BASELINE_RUBIX,
        Scenario::Rfm { th: 4 },
        Scenario::Rfm { th: 8 },
        Scenario::RfmOnRubix { th: 4 },
        Scenario::AutoRfm { th: 2 },
        Scenario::AutoRfm { th: 4 },
        Scenario::AutoRfm { th: 8 },
    ];
    let lane_instr = quick.instructions * 48 / BATCH_LANES.len() as u64;
    let mut batch_rows = Vec::new();
    let (mut batch_seq_s, mut batch_s) = (0.0f64, 0.0f64);
    for &spec in &quick.workloads {
        let cfgs: Vec<SimConfig> = BATCH_LANES
            .iter()
            .map(|&sc| {
                SimConfig::builder(spec)
                    .scenario(sc)
                    .cores(1)
                    .instructions(lane_instr)
                    .build()
                    .expect("valid batch lane config")
            })
            .collect();
        let (mut t_seq, mut t_batch) = (f64::MAX, f64::MAX);
        for _ in 0..KERNEL_REPS {
            let t = Instant::now();
            let seq: Vec<SimResult> = cfgs
                .iter()
                .map(|cfg| {
                    System::new(cfg.clone())
                        .expect("valid batch lane config")
                        .run_with(KernelKind::Event)
                })
                .collect();
            t_seq = t_seq.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            let batched = SimBatch::new(cfgs.clone())
                .expect("lanes share one warm shape")
                .run_with(KernelKind::Event);
            t_batch = t_batch.min(t.elapsed().as_secs_f64());
            for (i, (s, b)) in seq.iter().zip(&batched).enumerate() {
                if format!("{s:?}") != format!("{b:?}") {
                    eprintln!(
                        "perf_smoke: batch lane {i} diverged from standalone on {}",
                        spec.name
                    );
                    std::process::exit(1);
                }
            }
        }
        batch_seq_s += t_seq;
        batch_s += t_batch;
        let speedup = if t_batch > 0.0 { t_seq / t_batch } else { 0.0 };
        batch_rows.push(format!(
            "{{\"workload\":\"{}\",\"seq_s\":{t_seq:.3},\"batch_s\":{t_batch:.3},\
             \"speedup\":{speedup:.2}}}",
            spec.name,
        ));
    }
    let batch_speedup = if batch_s > 0.0 {
        batch_seq_s / batch_s
    } else {
        0.0
    };
    let batch_instr = quick.workloads.len() as u64 * BATCH_LANES.len() as u64 * lane_instr;
    let batch_instr_per_sec = if batch_s > 0.0 {
        batch_instr as f64 / batch_s
    } else {
        0.0
    };
    let seq_instr_per_sec = if batch_seq_s > 0.0 {
        batch_instr as f64 / batch_seq_s
    } else {
        0.0
    };

    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let sim_cycles: u64 = parallel_results.iter().map(|r| r.elapsed.raw()).sum();
    let cycles_per_sec = if parallel_s > 0.0 {
        sim_cycles as f64 / parallel_s
    } else {
        0.0
    };
    println!(
        "{{\"serial_s\":{serial_s:.3},\"parallel_s\":{parallel_s:.3},\"jobs\":{},\
         \"host_parallelism\":{host},\"sim_cycles\":{sim_cycles},\
         \"cycles_per_sec\":{cycles_per_sec:.0},\
         \"warm_prefetch_s\":{warm_prefetch_s:.3},\"cold_s\":{cold_s:.3},\
         \"forked_s\":{forked_s:.3},\"warm_fork_saved_s\":{:.3},\
         \"stepped_s\":{stepped_s:.3},\"event_s\":{event_s:.3},\
         \"kernel_skip_ratio\":{kernel_skip_ratio:.3},\
         \"geomean_speedup\":{geomean_speedup:.3},\
         \"kernels\":[{}],\
         \"batch_seq_s\":{batch_seq_s:.3},\"batch_s\":{batch_s:.3},\
         \"batch_speedup\":{batch_speedup:.3},\
         \"batch_instr_per_sec\":{batch_instr_per_sec:.0},\
         \"seq_instr_per_sec\":{seq_instr_per_sec:.0},\
         \"batches\":[{}]}}",
        quick.jobs,
        cold_s - forked_s,
        kernel_rows.join(","),
        batch_rows.join(","),
    );

    // Regression gate (off by default, enabled by verify.sh): an event kernel
    // slower than the stepped oracle is a perf bug, not a data point.
    if let Some(min) = opts.gate_speedup {
        if geomean_speedup < min {
            eprintln!(
                "perf_smoke: geomean event-kernel speedup {geomean_speedup:.3} \
                 below the --gate-speedup floor {min:.3}"
            );
            std::process::exit(1);
        }
    }
    // A batch slower than running its lanes one by one means the lockstep
    // engine regressed (or stopped amortizing warmup) — fail loudly.
    if let Some(min) = opts.gate_batch_speedup {
        if batch_speedup < min {
            eprintln!(
                "perf_smoke: batched speedup {batch_speedup:.3} below the \
                 --gate-batch-speedup floor {min:.3}"
            );
            std::process::exit(1);
        }
    }
}

//! Harness smoke benchmark: times the parallel fan-out and the warm-fork
//! machinery on a fixed quick (workload × scenario) matrix, then emits a
//! single JSON line:
//!
//! ```text
//! {"serial_s":12.34,"parallel_s":3.21,"jobs":8,"host_parallelism":16,
//!  "sim_cycles":123456789,"cycles_per_sec":38460000.0,
//!  "warm_prefetch_s":0.42,"cold_s":2.10,"forked_s":0.95,
//!  "warm_fork_saved_s":1.15}
//! ```
//!
//! Three measurements:
//!
//! * **serial vs parallel** — the same matrix through `run_matrix` with one
//!   worker and with `--jobs` workers. Warm snapshots for every workload are
//!   prefetched first (`warm_prefetch_s`), so both passes pay identical
//!   (zero) warmup cost and the comparison isolates the fan-out.
//! * **cold vs forked** — a sub-matrix simulated with per-run warmup
//!   (`run_cold`) and again by forking from the shared warm snapshots
//!   (`run`). `warm_fork_saved_s = cold_s - forked_s` is the measured
//!   wall-clock win of warmup forking.
//!
//! Both comparisons assert bitwise-identical results before reporting, so
//! this binary is also an end-to-end determinism check for the parallel
//! harness and the snapshot subsystem. Used by `scripts/verify.sh`.

use autorfm::experiments::Scenario;
use autorfm::SimConfig;
use autorfm_bench::{
    run, run_cold, run_matrix_cached, warm_cache, ResultCache, RunOpts, SimJob, BASELINE_ZEN,
};
use std::time::Instant;

fn main() {
    let opts = RunOpts::from_args();

    // Fixed quick matrix: enough independent cells to keep every worker busy,
    // small enough to finish in seconds.
    let mut quick = opts.clone();
    quick.cores = 2;
    quick.instructions = 5_000;
    let matrix: Vec<SimJob> = quick
        .workloads
        .iter()
        .flat_map(|&spec| {
            [
                (spec, BASELINE_ZEN),
                (spec, Scenario::Rfm { th: 4 }),
                (spec, Scenario::AutoRfm { th: 4 }),
            ]
        })
        .collect();

    // Prefetch warm snapshots for every workload so the serial and parallel
    // passes below pay the same (zero) warmup cost.
    let t_warm = Instant::now();
    for &spec in &quick.workloads {
        let cfg = SimConfig::scenario(spec, BASELINE_ZEN)
            .with_cores(quick.cores)
            .with_instructions(quick.instructions);
        drop(warm_cache().system(cfg));
    }
    let warm_prefetch_s = t_warm.elapsed().as_secs_f64();

    // Isolated caches: a checkpoint reload would collapse the timings.
    let mut serial = quick.clone();
    serial.jobs = 1;
    let t0 = Instant::now();
    let serial_results = run_matrix_cached(&matrix, &serial, &ResultCache::isolated());
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel_results = run_matrix_cached(&matrix, &quick, &ResultCache::isolated());
    let parallel_s = t1.elapsed().as_secs_f64();

    assert_eq!(
        serial_results.len(),
        parallel_results.len(),
        "result count must not depend on --jobs"
    );
    for (i, (s, p)) in serial_results.iter().zip(&parallel_results).enumerate() {
        assert!(
            s.elapsed == p.elapsed
                && s.dram.acts.get() == p.dram.acts.get()
                && s.dram.alerts.get() == p.dram.alerts.get()
                && s.per_core_ipc == p.per_core_ipc,
            "parallel result {i} diverged from serial"
        );
    }

    // Warm-fork A/B: the same sub-matrix with per-run warmup vs forking from
    // the (already prefetched) shared warm snapshots. Serial on both sides so
    // the delta is pure warmup cost.
    let sub: Vec<SimJob> = matrix.iter().copied().take(18).collect();
    let t2 = Instant::now();
    let cold_results: Vec<_> = sub
        .iter()
        .map(|&(spec, sc)| run_cold(spec, sc, &quick))
        .collect();
    let cold_s = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let forked_results: Vec<_> = sub
        .iter()
        .map(|&(spec, sc)| run(spec, sc, &quick))
        .collect();
    let forked_s = t3.elapsed().as_secs_f64();
    for (i, (c, f)) in cold_results.iter().zip(&forked_results).enumerate() {
        assert!(
            c.elapsed == f.elapsed
                && c.dram.acts.get() == f.dram.acts.get()
                && c.per_core_ipc == f.per_core_ipc,
            "warm-forked result {i} diverged from cold"
        );
    }

    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let sim_cycles: u64 = parallel_results.iter().map(|r| r.elapsed.raw()).sum();
    let cycles_per_sec = if parallel_s > 0.0 {
        sim_cycles as f64 / parallel_s
    } else {
        0.0
    };
    println!(
        "{{\"serial_s\":{serial_s:.3},\"parallel_s\":{parallel_s:.3},\"jobs\":{},\
         \"host_parallelism\":{host},\"sim_cycles\":{sim_cycles},\
         \"cycles_per_sec\":{cycles_per_sec:.0},\
         \"warm_prefetch_s\":{warm_prefetch_s:.3},\"cold_s\":{cold_s:.3},\
         \"forked_s\":{forked_s:.3},\"warm_fork_saved_s\":{:.3}}}",
        quick.jobs,
        cold_s - forked_s
    );
}

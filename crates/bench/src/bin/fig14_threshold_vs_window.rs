//! Figure 14: TRH-D tolerated by MINT vs window size, for Recursive and
//! Fractal Mitigation (Appendix-A closed form).

use autorfm::analysis::MintModel;
use autorfm_bench::print_table;

fn main() {
    println!("=== Figure 14: MINT tolerated TRH-D vs window (Appendix A) ===\n");
    let rows: Vec<Vec<String>> = (2..=32u32)
        .step_by(2)
        .map(|w| {
            let rm = MintModel::auto_rfm(w, true).tolerated_trh_d();
            let fm = MintModel::auto_rfm(w, false).tolerated_trh_d();
            vec![format!("{w}"), format!("{rm:.0}"), format!("{fm:.0}")]
        })
        .collect();
    print_table(&["window (W)", "recursive TRH-D", "fractal TRH-D"], &rows);
    println!("\nFractal sits below recursive at every window: FM selects from N slots");
    println!("instead of N+1, so MINT mitigates each row more often.");
}

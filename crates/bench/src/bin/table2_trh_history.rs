//! Table II: Rowhammer thresholds over DRAM generations.

use autorfm::analysis::TRH_HISTORY;
use autorfm_bench::print_table;

fn main() {
    println!("=== Table II: Rowhammer threshold over time ===\n");
    let rows: Vec<Vec<String>> = TRH_HISTORY
        .iter()
        .map(|e| {
            vec![
                e.generation.to_string(),
                e.trh_s.map_or("-".into(), |v| format!("{v}")),
                e.trh_d.map_or("-".into(), |(lo, hi)| {
                    if lo == hi {
                        format!("{lo}")
                    } else {
                        format!("{lo} - {hi}")
                    }
                }),
            ]
        })
        .collect();
    print_table(&["generation", "TRH-S", "TRH-D"], &rows);
}

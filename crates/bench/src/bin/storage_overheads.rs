//! Section VI-C: storage overheads of AutoRFM across tracker choices.

use autorfm::experiments::Scenario;
use autorfm::storage::storage_report;
use autorfm::trackers::TrackerKind;
use autorfm::SimConfig;
use autorfm_bench::print_table;
use autorfm_workloads::WorkloadSpec;

fn main() {
    println!("=== Section VI-C: SRAM storage overheads ===\n");
    let spec = WorkloadSpec::by_name("bwaves").unwrap();
    let mut rows = Vec::new();
    for (name, scenario) in [
        ("AutoRFM + MINT (paper)", Scenario::AutoRfm { th: 4 }),
        (
            "AutoRFM + PrIDE",
            Scenario::AutoRfmWith {
                th: 4,
                tracker: TrackerKind::Pride,
            },
        ),
        (
            "AutoRFM + Mithril",
            Scenario::AutoRfmWith {
                th: 4,
                tracker: TrackerKind::Mithril,
            },
        ),
        ("RFM + MINT", Scenario::Rfm { th: 4 }),
    ] {
        let cfg = SimConfig::builder(spec)
            .scenario(scenario)
            .build()
            .expect("valid scenario config");
        let r = storage_report(&cfg).expect("valid tracker");
        rows.push(vec![
            name.to_string(),
            format!("{}", r.mc_bytes),
            format!("{}", r.saum_bits_per_bank),
            format!("{}", r.tracker_bits_per_bank),
            format!("{}", r.dram_bytes_per_bank()),
            format!("{}", r.dram_total_bytes),
        ]);
    }
    print_table(
        &[
            "configuration",
            "MC bytes",
            "SAUM bits/bank",
            "tracker bits/bank",
            "DRAM B/bank",
            "DRAM total B",
        ],
        &rows,
    );
    println!("\npaper: 128 bytes at the MC; ~5 bytes per DRAM bank (MINT + SAUM) + a PRNG.");
}

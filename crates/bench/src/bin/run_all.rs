//! Runs every experiment binary, writing each report to
//! `results/<target>.txt` and a machine-readable manifest to
//! `results/<target>.json` (see `autorfm_telemetry::RunManifest`). Pass the
//! usual flags (`--quick`, `--full`, `--jobs N`, `--telemetry`, …) and they
//! are forwarded to each experiment. `run_all`'s own flags:
//!
//! * `--list` — print the target names and exit,
//! * `--only <substring>` — run only matching targets (repeatable),
//! * `--resume` — skip targets whose manifest records a clean exit, and let
//!   the rest reload completed simulations from their checkpoint.
//!
//! Every child runs with `AUTORFM_CHECKPOINT=results/<target>.ckpt`: as its
//! simulations complete, the harness appends them to that sealed snapshot
//! file, so a campaign killed mid-flight resumes under `--resume` without
//! re-running finished targets or finished simulations inside interrupted
//! targets. Checkpoints of targets that complete cleanly are deleted.
//!
//! With `AUTORFM_STORE=DIR` set, the per-target checkpoint files are skipped
//! entirely: every child inherits the variable and routes its completed
//! simulations through the campaign service's content-addressed cell store
//! at `DIR` instead (see `autorfm_campaign`) — one shared, restart-safe
//! result per `(workload, scenario, cores, instructions, seed)` cell across
//! all targets and any concurrently running `campaignd`.
//!
//! Experiments run as child processes with bounded concurrency: up to
//! `AUTORFM_PROCS` targets at a time. The default pool size is the host's
//! available parallelism divided by the per-child `--jobs` thread count
//! (min 1, capped at 8) — each child already fans its simulations out over
//! `--jobs` threads, so the pool fills the host without oversubscribing it.
//! Failures still produce a `results/<target>.txt` capturing the partial
//! stdout, the child's exit code, and a stderr tail.

use autorfm::telemetry::{Json, RunManifest};
use autorfm_bench::{default_jobs, par_map, RunOpts};
use std::path::Path;
use std::process::Command;
use std::time::Instant;

const TARGETS: &[&str] = &[
    "fig01_overview",
    "table2_trh_history",
    "table3_mint_threshold",
    "fig14_threshold_vs_window",
    "fig16_escape_probability",
    "storage_overheads",
    "table5_workload_characteristics",
    "fig03_rfm_slowdown",
    "fig08_mapping_impact",
    "fig11_rfm_vs_autorfm",
    "table6_mitigation_threshold",
    "fig12_power",
    "fig13_prac_comparison",
    "fig17_rubix_rfm",
    "fig18_other_trackers",
    "security_montecarlo",
    "ablations",
    "model_vs_sim",
    "seed_sensitivity",
    "perf_smoke",
];

/// Experiments that take simulation flags (the analytic ones don't need them).
const TAKES_FLAGS: &[&str] = &[
    "perf_smoke",
    "fig01_overview",
    "table5_workload_characteristics",
    "fig03_rfm_slowdown",
    "fig08_mapping_impact",
    "fig11_rfm_vs_autorfm",
    "table6_mitigation_threshold",
    "fig12_power",
    "fig13_prac_comparison",
    "fig17_rubix_rfm",
    "fig18_other_trackers",
    "ablations",
    "model_vs_sim",
    "seed_sensitivity",
];

/// Last `lines` lines of a child's stderr, lossily decoded.
fn stderr_tail(stderr: &[u8], lines: usize) -> String {
    let text = String::from_utf8_lossy(stderr);
    let all: Vec<&str> = text.lines().collect();
    let at = all.len().saturating_sub(lines);
    all[at..].join("\n")
}

/// The per-child worker-thread count the forwarded flags will produce:
/// `--jobs N` if present, else the harness default (`AUTORFM_JOBS` / host
/// parallelism).
fn child_jobs(flags: &[String]) -> usize {
    flags
        .iter()
        .position(|f| f == "--jobs")
        .and_then(|i| flags.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .map_or_else(default_jobs, |n| n.max(1))
}

/// Process-pool size: [`RunOpts::from_env`]'s `AUTORFM_PROCS` if set, else
/// available parallelism divided by the per-child thread count (min 1,
/// capped at 8).
fn pool_size(flags: &[String]) -> usize {
    if let Some(n) = RunOpts::from_env().procs {
        return n;
    }
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    (host / child_jobs(flags)).clamp(1, 8)
}

/// Ensures `results/<target>.json` exists and carries the child's exit code
/// and (for analytic targets without their own harness) its wall clock.
fn finalize_manifest(target: &str, exit_code: Option<i64>, wall_s: f64, jobs: usize) {
    let path = Path::new("results").join(format!("{target}.json"));
    let mut manifest = RunManifest::load(&path).unwrap_or_else(|_| {
        // The child didn't write one (analytic experiment or early crash):
        // record the run shape run_all observed from the outside.
        let mut m = RunManifest::new(target);
        m.jobs = jobs as u64;
        m.wall_s = wall_s;
        m.set_config("recorded_by", Json::Str("run_all".into()));
        m
    });
    manifest.exit_code = exit_code;
    if let Err(e) = manifest.save(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Whether `results/<target>.json` records a clean finish (`--resume` skips
/// such targets).
fn is_complete(target: &str) -> bool {
    let path = Path::new("results").join(format!("{target}.json"));
    RunManifest::load(&path).is_ok_and(|m| m.exit_code == Some(0))
}

/// Splits `run_all`'s own flags (`--list`, `--only X`, `--resume`) from the
/// flags forwarded to each child. Returns `(list, resume, only, forwarded)`.
fn parse_own_flags(args: Vec<String>) -> (bool, bool, Vec<String>, Vec<String>) {
    let (mut list, mut resume) = (false, false);
    let mut only = Vec::new();
    let mut forwarded = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--resume" => resume = true,
            "--only" => only.push(iter.next().expect("--only needs a substring")),
            _ => forwarded.push(arg),
        }
    }
    (list, resume, only, forwarded)
}

fn main() {
    let (list, resume, only, flags) = parse_own_flags(std::env::args().skip(1).collect());
    let selected: Vec<&str> = TARGETS
        .iter()
        .copied()
        .filter(|t| only.is_empty() || only.iter().any(|o| t.contains(o.as_str())))
        .collect();
    if list {
        for target in &selected {
            println!("{target}");
        }
        return;
    }
    if selected.is_empty() {
        eprintln!("no targets match --only {only:?}; try --list");
        std::process::exit(2);
    }
    std::fs::create_dir_all("results").expect("create results/");
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate target dir");
    let procs = pool_size(&flags);
    let jobs = child_jobs(&flags);
    // With a shared cell store configured, children inherit AUTORFM_STORE
    // and the ad-hoc per-target checkpoint files are bypassed.
    let store = RunOpts::from_env().store;
    if let Some(dir) = &store {
        eprintln!("cell store: {} (per-target checkpoints off)", dir.display());
    }
    eprintln!("process pool: {procs} (child --jobs {jobs})");

    let failures: Vec<Option<String>> = par_map(&selected, procs, |&target| {
        if resume && is_complete(target) {
            eprintln!("=== {target}: already complete, skipping (--resume) ===");
            return None;
        }
        eprintln!("=== running {target} ===");
        let manifest_path = format!("results/{target}.json");
        let checkpoint_path = format!("results/{target}.ckpt");
        // Remove any stale manifest so a crash can't leave last run's data
        // behind wearing this run's exit code. The checkpoint, by contrast,
        // deliberately survives: it's how an interrupted target resumes.
        let _ = std::fs::remove_file(&manifest_path);
        if !resume && store.is_none() {
            let _ = std::fs::remove_file(&checkpoint_path);
        }
        let mut cmd = Command::new(exe_dir.join(target));
        if TAKES_FLAGS.contains(&target) {
            cmd.args(&flags);
        }
        cmd.env("AUTORFM_MANIFEST", &manifest_path);
        if store.is_none() {
            cmd.env("AUTORFM_CHECKPOINT", &checkpoint_path);
        }
        let path = format!("results/{target}.txt");
        let started = Instant::now();
        match cmd.output() {
            Ok(out) if out.status.success() => {
                std::fs::write(&path, &out.stdout).expect("write result");
                finalize_manifest(target, Some(0), started.elapsed().as_secs_f64(), jobs);
                if store.is_none() {
                    let _ = std::fs::remove_file(&checkpoint_path);
                }
                eprintln!("    -> {path}");
                None
            }
            Ok(out) => {
                // Keep whatever the experiment printed before dying, plus the
                // end of its stderr, so the report directory stays complete.
                let mut body = out.stdout.clone();
                let tail = stderr_tail(&out.stderr, 20);
                let code = out
                    .status
                    .code()
                    .map_or("killed by signal".to_string(), |c| c.to_string());
                body.extend_from_slice(
                    format!(
                        "\n=== FAILED ({}) — stderr tail ===\nexit code: {code}\n{tail}\n",
                        out.status
                    )
                    .as_bytes(),
                );
                std::fs::write(&path, &body).expect("write result");
                finalize_manifest(
                    target,
                    out.status.code().map(i64::from),
                    started.elapsed().as_secs_f64(),
                    jobs,
                );
                eprintln!("    FAILED ({}) -> {path}", out.status);
                Some(format!("{target}: exited with {}", out.status))
            }
            Err(e) => Some(format!(
                "{target}: could not launch (build all bins first): {e}"
            )),
        }
    });

    let failures: Vec<String> = failures.into_iter().flatten().collect();
    if failures.is_empty() {
        eprintln!("done.");
    } else {
        eprintln!("done with {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("    {f}");
        }
        std::process::exit(1);
    }
}

//! Runs every experiment binary in sequence, writing each report to
//! `results/<target>.txt`. Pass the usual flags (`--quick`, `--full`, …) and
//! they are forwarded to each experiment.

use std::process::Command;

const TARGETS: &[&str] = &[
    "fig01_overview",
    "table2_trh_history",
    "table3_mint_threshold",
    "fig14_threshold_vs_window",
    "fig16_escape_probability",
    "storage_overheads",
    "table5_workload_characteristics",
    "fig03_rfm_slowdown",
    "fig08_mapping_impact",
    "fig11_rfm_vs_autorfm",
    "table6_mitigation_threshold",
    "fig12_power",
    "fig13_prac_comparison",
    "fig17_rubix_rfm",
    "fig18_other_trackers",
    "security_montecarlo",
    "ablations",
    "model_vs_sim",
    "seed_sensitivity",
];

/// Experiments that take simulation flags (the analytic ones don't need them).
const TAKES_FLAGS: &[&str] = &[
    "fig01_overview",
    "table5_workload_characteristics",
    "fig03_rfm_slowdown",
    "fig08_mapping_impact",
    "fig11_rfm_vs_autorfm",
    "table6_mitigation_threshold",
    "fig12_power",
    "fig13_prac_comparison",
    "fig17_rubix_rfm",
    "ablations",
    "model_vs_sim",
    "seed_sensitivity",
];

fn main() {
    let flags: Vec<String> = std::env::args().skip(1).collect();
    std::fs::create_dir_all("results").expect("create results/");
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate target dir");
    for target in TARGETS {
        eprintln!("=== running {target} ===");
        let mut cmd = Command::new(exe_dir.join(target));
        if TAKES_FLAGS.contains(target) {
            cmd.args(&flags);
        }
        match cmd.output() {
            Ok(out) if out.status.success() => {
                let path = format!("results/{target}.txt");
                std::fs::write(&path, &out.stdout).expect("write result");
                eprintln!("    -> {path}");
            }
            Ok(out) => {
                eprintln!(
                    "    FAILED ({}): {}",
                    out.status,
                    String::from_utf8_lossy(&out.stderr)
                );
            }
            Err(e) => eprintln!("    could not launch (build all bins first): {e}"),
        }
    }
    eprintln!("done.");
}

//! Runs every experiment binary, writing each report to
//! `results/<target>.txt`. Pass the usual flags (`--quick`, `--full`,
//! `--jobs N`, …) and they are forwarded to each experiment.
//!
//! Experiments run as child processes with bounded concurrency: up to
//! `AUTORFM_PROCS` targets at a time (default 2 — each child already fans its
//! simulations out over `--jobs` threads, so a small process pool keeps the
//! host busy without oversubscribing it). Failures still produce a
//! `results/<target>.txt` capturing the partial stdout and a stderr tail.

use autorfm_bench::par_map;
use std::process::Command;

const TARGETS: &[&str] = &[
    "fig01_overview",
    "table2_trh_history",
    "table3_mint_threshold",
    "fig14_threshold_vs_window",
    "fig16_escape_probability",
    "storage_overheads",
    "table5_workload_characteristics",
    "fig03_rfm_slowdown",
    "fig08_mapping_impact",
    "fig11_rfm_vs_autorfm",
    "table6_mitigation_threshold",
    "fig12_power",
    "fig13_prac_comparison",
    "fig17_rubix_rfm",
    "fig18_other_trackers",
    "security_montecarlo",
    "ablations",
    "model_vs_sim",
    "seed_sensitivity",
];

/// Experiments that take simulation flags (the analytic ones don't need them).
const TAKES_FLAGS: &[&str] = &[
    "fig01_overview",
    "table5_workload_characteristics",
    "fig03_rfm_slowdown",
    "fig08_mapping_impact",
    "fig11_rfm_vs_autorfm",
    "table6_mitigation_threshold",
    "fig12_power",
    "fig13_prac_comparison",
    "fig17_rubix_rfm",
    "fig18_other_trackers",
    "ablations",
    "model_vs_sim",
    "seed_sensitivity",
];

/// Last `lines` lines of a child's stderr, lossily decoded.
fn stderr_tail(stderr: &[u8], lines: usize) -> String {
    let text = String::from_utf8_lossy(stderr);
    let all: Vec<&str> = text.lines().collect();
    let at = all.len().saturating_sub(lines);
    all[at..].join("\n")
}

fn main() {
    let flags: Vec<String> = std::env::args().skip(1).collect();
    std::fs::create_dir_all("results").expect("create results/");
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate target dir");
    let procs = std::env::var("AUTORFM_PROCS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2);

    let failures: Vec<Option<String>> = par_map(TARGETS, procs, |&target| {
        eprintln!("=== running {target} ===");
        let mut cmd = Command::new(exe_dir.join(target));
        if TAKES_FLAGS.contains(&target) {
            cmd.args(&flags);
        }
        let path = format!("results/{target}.txt");
        match cmd.output() {
            Ok(out) if out.status.success() => {
                std::fs::write(&path, &out.stdout).expect("write result");
                eprintln!("    -> {path}");
                None
            }
            Ok(out) => {
                // Keep whatever the experiment printed before dying, plus the
                // end of its stderr, so the report directory stays complete.
                let mut body = out.stdout.clone();
                let tail = stderr_tail(&out.stderr, 20);
                body.extend_from_slice(
                    format!("\n=== FAILED ({}) — stderr tail ===\n{tail}\n", out.status)
                        .as_bytes(),
                );
                std::fs::write(&path, &body).expect("write result");
                eprintln!("    FAILED ({}) -> {path}", out.status);
                Some(format!("{target}: exited with {}", out.status))
            }
            Err(e) => Some(format!(
                "{target}: could not launch (build all bins first): {e}"
            )),
        }
    });

    let failures: Vec<String> = failures.into_iter().flatten().collect();
    if failures.is_empty() {
        eprintln!("done.");
    } else {
        eprintln!("done with {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("    {f}");
        }
        std::process::exit(1);
    }
}

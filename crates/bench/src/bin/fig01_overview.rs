//! Figure 1: the paper's motivation figure.
//!
//! (a) the Rowhammer-threshold trend (Table II data), and (d) the slowdown of
//! RFM as thresholds shrink (computed from the Appendix-A model mapping
//! RFMTH → tolerated TRH-D plus simulated slowdowns). Figures 1(b) and 1(c)
//! are schematic diagrams with no data series.

use autorfm::analysis::{MintModel, TRH_HISTORY};
use autorfm::experiments::Scenario;
use autorfm_bench::{banner, bar_chart, pct, Harness, ResultCache, RunOpts, SimJob, BASELINE_ZEN};

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner(
        "Figure 1(a) + 1(d): threshold trend and RFM slowdown trend",
        &opts,
    );

    println!("(a) Rowhammer threshold over DRAM generations:");
    let trend: Vec<(String, f64)> = TRH_HISTORY
        .iter()
        .map(|e| {
            let v = e.trh_s.unwrap_or_else(|| e.trh_d.unwrap().0) as f64;
            (e.generation.to_string(), v)
        })
        .collect();
    bar_chart("TRH (activations, min reported)", &trend, |v| {
        format!("{v:.0}")
    });

    println!("\n(d) RFM slowdown as the tolerated threshold shrinks:");
    let ths = [32u32, 16, 8, 4];
    let cache = ResultCache::new();
    let mut matrix: Vec<SimJob> = Vec::new();
    for spec in &opts.workloads {
        matrix.push((spec, BASELINE_ZEN));
        matrix.extend(ths.iter().map(|&th| (*spec, Scenario::Rfm { th })));
    }
    cache.prefetch(&matrix, &opts);
    let mut chart = Vec::new();
    for th in ths {
        let trhd = MintModel::rfm(th, true).tolerated_trh_d();
        let mut sum = 0.0;
        for spec in &opts.workloads {
            let base = cache.get(spec, BASELINE_ZEN, &opts);
            sum += cache
                .get(spec, Scenario::Rfm { th }, &opts)
                .slowdown_vs(&base);
        }
        let s = sum / opts.workloads.len() as f64;
        chart.push((format!("TRH-D ~{trhd:.0} (RFM-{th})"), s));
    }
    bar_chart("average RFM slowdown", &chart, pct);
    println!("\npaper: negligible at today's thresholds (~800), 33% at a threshold of 100.");

    harness.record_cache(&cache);
    harness.finish();
}

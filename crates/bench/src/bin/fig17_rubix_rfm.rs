//! Figure 17 (Appendix C): impact of RFM on Zen vs Rubix mapping systems,
//! each normalized to its own no-RFM baseline.
//!
//! Paper: RFM incurs *higher* overheads on Rubix (35.1% vs 33.1% for RFM-4)
//! because Rubix increases the mean activations per bank.

use autorfm::experiments::Scenario;
use autorfm_bench::{
    banner, pct, print_table, Harness, ResultCache, RunOpts, SimJob, BASELINE_RUBIX, BASELINE_ZEN,
};

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner(
        "Figure 17: RFM on Zen vs Rubix (own-baseline normalization)",
        &opts,
    );

    let ths = [4u32, 8, 16, 32];
    let cache = ResultCache::new();
    let mut matrix: Vec<SimJob> = Vec::new();
    for spec in &opts.workloads {
        matrix.push((spec, BASELINE_ZEN));
        matrix.push((spec, BASELINE_RUBIX));
        for &th in &ths {
            matrix.push((spec, Scenario::Rfm { th }));
            matrix.push((spec, Scenario::RfmOnRubix { th }));
        }
    }
    cache.prefetch(&matrix, &opts);
    let mut rows = Vec::new();
    for th in ths {
        let (mut s_zen, mut s_rbx) = (0.0f64, 0.0f64);
        for spec in &opts.workloads {
            let base_zen = cache.get(spec, BASELINE_ZEN, &opts);
            let base_rbx = cache.get(spec, BASELINE_RUBIX, &opts);
            s_zen += cache
                .get(spec, Scenario::Rfm { th }, &opts)
                .slowdown_vs(&base_zen);
            s_rbx += cache
                .get(spec, Scenario::RfmOnRubix { th }, &opts)
                .slowdown_vs(&base_rbx);
        }
        let n = opts.workloads.len() as f64;
        rows.push(vec![format!("RFM-{th}"), pct(s_zen / n), pct(s_rbx / n)]);
    }
    print_table(&["config", "slowdown on Zen", "slowdown on Rubix"], &rows);
    println!("\npaper: 33.1% vs 35.1% for RFM-4 — Rubix spreads ACTs over more rows but");
    println!("issues more ACTs per bank, so bank-counted RFM fires more often.");

    harness.record_cache(&cache);
    harness.finish();
}

//! Figure 18 (Appendix D): TRH-D tolerated by PrIDE, MINT, and Mithril when
//! paired with AutoRFM.
//!
//! MINT's threshold comes from the Appendix-A closed form; PrIDE's from the
//! paper's relation (MINT tolerates ~25% lower thresholds than PrIDE, Section
//! II-D); Mithril's deterministic tracking is estimated empirically with the
//! Monte-Carlo harness (worst damage over adversarial patterns). Paper: all
//! three tolerate sub-125 TRH-D at AutoRFMTH-4; MINT beats PrIDE; Mithril
//! needs >30K counter entries per bank.

use autorfm::analysis::{AttackSim, MintModel};
use autorfm::mitigation::MitigationKind;
use autorfm::sim_core::RowAddr;
use autorfm::trackers::TrackerKind;
use autorfm::workloads::{AttackPattern, AttackStream};
use autorfm_bench::{par_map, print_table, Harness, RunOpts};

/// Empirical worst-case damage for a tracker under its adversarial pattern.
fn empirical_worst_damage(tracker: TrackerKind, window: u32) -> u64 {
    let mut worst = 0u64;
    for (i, pattern) in [
        AttackPattern::Circular {
            base: RowAddr(10_000),
            window,
        },
        AttackPattern::DoubleSided {
            victim: RowAddr(20_000),
        },
        AttackPattern::Decoy {
            aggressor: RowAddr(30_000),
            decoys: 3,
        },
        AttackPattern::HalfDouble {
            victim: RowAddr(40_000),
            near_ratio: 2,
        },
    ]
    .into_iter()
    .enumerate()
    {
        let mut sim = AttackSim::new(
            tracker,
            MitigationKind::Fractal,
            window,
            131_072,
            77 + i as u64,
        )
        .expect("valid tracker");
        let report = sim.run_pattern(&mut AttackStream::new(pattern), 500_000);
        worst = worst.max(report.max_damage);
    }
    worst
}

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    println!("=== Figure 18: TRH-D tolerated by PrIDE / MINT / Mithril with AutoRFM ===\n");
    // Each (threshold, tracker) Monte-Carlo sweep is independent: fan the six
    // combinations out and re-assemble rows in threshold order.
    let ths = [4u32, 8];
    // `--tracker NAME` (any name from `autorfm::trackers::names()`) narrows
    // the sweep to one tracker; default is the figure's PrIDE/MINT/Mithril
    // trio plus the tracker-zoo comparison columns (Graphene, ABACuS, Hydra,
    // OracleRH).
    let trackers: Vec<TrackerKind> = match opts.tracker {
        Some(t) => vec![t],
        None => vec![
            TrackerKind::Mithril,
            TrackerKind::Mint,
            TrackerKind::Pride,
            TrackerKind::Graphene,
            TrackerKind::Abacus,
            TrackerKind::Hydra,
            TrackerKind::Oracle,
        ],
    };
    let combos: Vec<(u32, TrackerKind)> = ths
        .iter()
        .flat_map(|&th| trackers.iter().map(move |&t| (th, t)))
        .collect();
    let damages = par_map(&combos, opts.jobs, |&(th, tracker)| {
        empirical_worst_damage(tracker, th)
    });

    let note = "Mithril simulated with 32 counter entries/bank.";
    let mut rows = Vec::new();
    for (i, &th) in ths.iter().enumerate() {
        let mint = MintModel::auto_rfm(th, false).tolerated_trh_d();
        let pride = mint / 0.75; // MINT tolerates ~25% lower than PrIDE [37]
        let base = i * trackers.len();
        let per_tracker = &damages[base..base + trackers.len()];
        let mithril_mc = trackers
            .iter()
            .position(|&t| t == TrackerKind::Mithril)
            .map(|j| per_tracker[j]);
        let mc = trackers
            .iter()
            .zip(per_tracker)
            .map(|(t, d)| format!("{t}={d}"))
            .collect::<Vec<_>>()
            .join(" ");
        rows.push(vec![
            format!("AutoRFM-{th}"),
            format!("{pride:.0}"),
            format!("{mint:.0}"),
            mithril_mc.map_or_else(|| "-".into(), |d| format!("~{}", d / 2)),
            mc,
        ]);
    }
    print_table(
        &[
            "config",
            "PrIDE TRH-D",
            "MINT TRH-D",
            "Mithril TRH-D (MC)",
            "MC worst damage",
        ],
        &rows,
    );
    println!("\n{note}");
    println!("paper: all three trackers tolerate sub-125 TRH-D at AutoRFMTH-4;");
    println!("MINT needs the least storage (4 B/bank); Mithril needs >30K entries/bank.");

    for (&(th, tracker), &damage) in combos.iter().zip(&damages) {
        let th = th.to_string();
        let tracker = tracker.to_string();
        harness.gauge(
            "mc_worst_damage",
            &[("th", &th), ("tracker", &tracker)],
            damage as f64,
        );
    }
    harness.finish();
}

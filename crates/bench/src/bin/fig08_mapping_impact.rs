//! Figure 8: impact of the memory mapping on AutoRFM-4.
//!
//! (a) slowdown and (b) ALERT-per-ACT under the baseline AMD-Zen mapping vs
//! the Rubix randomized mapping. Paper averages: Zen 16.5% / 3.7%,
//! Rubix 3.1% / 0.22%.

use autorfm::experiments::Scenario;
use autorfm_bench::{
    banner, pct, print_table, Harness, ResultCache, RunOpts, SimJob, BASELINE_ZEN,
};

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner("Figure 8: AutoRFM-4 under Zen vs Rubix mapping", &opts);

    let cache = ResultCache::new();
    let matrix: Vec<SimJob> = opts
        .workloads
        .iter()
        .flat_map(|&spec| {
            [
                (spec, BASELINE_ZEN),
                (spec, Scenario::AutoRfmZen { th: 4 }),
                (spec, Scenario::AutoRfm { th: 4 }),
            ]
        })
        .collect();
    cache.prefetch(&matrix, &opts);
    let mut rows = Vec::new();
    let (mut s_zen, mut s_rbx, mut a_zen, mut a_rbx) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);

    for spec in &opts.workloads {
        let base = cache.get(spec, BASELINE_ZEN, &opts);
        let zen = cache.get(spec, Scenario::AutoRfmZen { th: 4 }, &opts);
        let rbx = cache.get(spec, Scenario::AutoRfm { th: 4 }, &opts);
        let (sz, sr) = (zen.slowdown_vs(&base), rbx.slowdown_vs(&base));
        s_zen += sz;
        s_rbx += sr;
        a_zen += zen.alerts_per_act;
        a_rbx += rbx.alerts_per_act;
        rows.push(vec![
            spec.name.to_string(),
            pct(sz),
            pct(sr),
            format!("{:.2}%", zen.alerts_per_act * 100.0),
            format!("{:.2}%", rbx.alerts_per_act * 100.0),
        ]);
    }
    let n = opts.workloads.len() as f64;
    rows.push(vec![
        "AVERAGE".into(),
        pct(s_zen / n),
        pct(s_rbx / n),
        format!("{:.2}%", a_zen / n * 100.0),
        format!("{:.2}%", a_rbx / n * 100.0),
    ]);
    rows.push(vec![
        "paper avg".into(),
        "16.5%".into(),
        "3.1%".into(),
        "3.70%".into(),
        "0.22%".into(),
    ]);
    print_table(
        &[
            "workload",
            "slow(Zen)",
            "slow(Rubix)",
            "alert/ACT(Zen)",
            "alert/ACT(Rubix)",
        ],
        &rows,
    );

    harness.record_cache(&cache);
    harness.finish();
}

//! Analytical model vs cycle-level simulation (extension study).
//!
//! Compares the first-order closed forms in `autorfm_analysis::perf_model`
//! against the simulator: the AutoRFM ALERT probability (footnote 2) and the
//! RFM slowdown, both as functions of the measured per-bank activation rate.

use autorfm::analysis::{AutoRfmConflictModel, RfmPerfModel};
use autorfm::experiments::Scenario;
use autorfm_bench::{
    banner, pct, print_table, Harness, ResultCache, RunOpts, SimJob, BASELINE_ZEN,
};

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner(
        "Model vs simulation: ALERT probability and RFM slowdown",
        &opts,
    );

    let cache = ResultCache::new();
    let matrix: Vec<SimJob> = opts
        .workloads
        .iter()
        .flat_map(|&spec| {
            [
                (spec, BASELINE_ZEN),
                (spec, Scenario::AutoRfm { th: 4 }),
                (spec, Scenario::Rfm { th: 4 }),
            ]
        })
        .collect();
    cache.prefetch(&matrix, &opts);
    let mut rows = Vec::new();
    for spec in &opts.workloads {
        let base = cache.get(spec, BASELINE_ZEN, &opts);
        // Per-bank activation rate measured on the baseline, in ACTs/ns.
        let acts_per_ns = base.act_per_trefi_per_bank / 3900.0;

        let auto = cache.get(spec, Scenario::AutoRfm { th: 4 }, &opts);
        let alert_model = AutoRfmConflictModel::paper_defaults(4).alert_probability(acts_per_ns);

        let rfm = cache.get(spec, Scenario::Rfm { th: 4 }, &opts);
        let rfm_model = RfmPerfModel::paper_defaults(4).slowdown_estimate(acts_per_ns);

        rows.push(vec![
            spec.name.to_string(),
            format!("{:.2}", base.act_per_trefi_per_bank),
            format!("{:.3}%", auto.alerts_per_act * 100.0),
            format!("{:.3}%", alert_model * 100.0),
            pct(rfm.slowdown_vs(&base)),
            pct(rfm_model),
        ]);
    }
    print_table(
        &[
            "workload",
            "ACT/tREFI/bk",
            "alert sim",
            "alert model",
            "RFM-4 sim",
            "RFM-4 model",
        ],
        &rows,
    );
    println!("\nThe models capture the first-order trends (both grow with the per-bank");
    println!("rate); queueing and burstiness effects account for the residuals.");

    harness.record_cache(&cache);
    harness.finish();
}

//! Tracker zoo: every registered tracker's slowdown at AutoRFM-4, with the
//! OracleRH lower-bound gate.
//!
//! Runs one quick-sweep cell (AutoRFM-4 + tracker vs the no-mitigation
//! Rubix baseline — AutoRFM scenarios run on the Rubix mapping, so the
//! baseline must match or mapping effects drown out mitigation cost) for
//! **every** `autorfm::trackers::names()` entry — the sweep
//! enumerates the plugin registry, so a newly registered tracker gains a
//! column with no edit here. The idealized OracleRH mitigates only when a
//! row provably nears the threshold, so its slowdown must be **strictly
//! lower** than every real tracker's; the binary exits nonzero if any real
//! tracker beats it (that would mean either the oracle regressed or a
//! tracker stopped paying for its mitigations).
//!
//! The last stdout line is a JSON record `{pr, trackers, slowdowns,
//! oracle_gap_geomean}` that `scripts/verify.sh` distills into
//! `BENCH_8.json`.

use autorfm::experiments::Scenario;
use autorfm::telemetry::Json;
use autorfm::trackers::TrackerKind;
use autorfm_bench::{
    banner, pct, print_table, Harness, ResultCache, RunOpts, SimJob, BASELINE_RUBIX,
};

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner(
        "Tracker zoo: slowdown of AutoRFM-4 per registered tracker",
        &opts,
    );

    let th = 4u32;
    let kinds = TrackerKind::ALL;
    let cache = ResultCache::new();
    let mut matrix: Vec<SimJob> = Vec::new();
    for spec in &opts.workloads {
        matrix.push((spec, BASELINE_RUBIX));
        matrix.extend(
            kinds
                .iter()
                .map(|&tracker| (*spec, Scenario::AutoRfmWith { th, tracker })),
        );
    }
    cache.prefetch(&matrix, &opts);

    // Geomean slowdown factor (1 + slowdown) per tracker across workloads.
    let mut log_sums = vec![0.0f64; kinds.len()];
    let mut rows = Vec::new();
    for spec in &opts.workloads {
        let base = cache.get(spec, BASELINE_RUBIX, &opts);
        let mut row = vec![spec.name.to_string()];
        for (i, &tracker) in kinds.iter().enumerate() {
            let r = cache.get(spec, Scenario::AutoRfmWith { th, tracker }, &opts);
            let s = r.slowdown_vs(&base);
            log_sums[i] += (1.0 + s).ln();
            row.push(pct(s));
        }
        rows.push(row);
    }
    let n = opts.workloads.len() as f64;
    let factors: Vec<f64> = log_sums.iter().map(|l| (l / n).exp()).collect();
    let mut avg = vec!["GEOMEAN".to_string()];
    avg.extend(factors.iter().map(|f| pct(f - 1.0)));
    rows.push(avg);

    let mut headers: Vec<String> = vec!["workload".into()];
    headers.extend(kinds.iter().map(|k| k.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);

    // The oracle lower-bound gate and the per-PR headline number.
    let oracle_idx = kinds
        .iter()
        .position(|k| k.info().flags.oracle)
        .expect("registry has an oracle baseline");
    let oracle_factor = factors[oracle_idx];
    let mut gap_log_sum = 0.0f64;
    let mut real = 0usize;
    let mut violations = Vec::new();
    for (i, &kind) in kinds.iter().enumerate() {
        if i == oracle_idx {
            continue;
        }
        gap_log_sum += (factors[i] / oracle_factor).ln();
        real += 1;
        if factors[i] <= oracle_factor {
            violations.push(format!(
                "{kind} ({:.6}) <= oracle ({:.6})",
                factors[i], oracle_factor
            ));
        }
    }
    let oracle_gap_geomean = (gap_log_sum / real as f64).exp();
    println!(
        "\noracle slowdown factor {:.6}; real-tracker gap geomean {:.4}x",
        oracle_factor, oracle_gap_geomean
    );

    for (kind, factor) in kinds.iter().zip(&factors) {
        let tracker = kind.to_string();
        harness.gauge("zoo_slowdown_factor", &[("tracker", &tracker)], *factor);
    }
    harness.record_cache(&cache);
    harness.finish();

    let slowdowns = Json::Obj(
        kinds
            .iter()
            .zip(&factors)
            .map(|(k, f)| (k.to_string(), Json::Num(*f)))
            .collect(),
    );
    let record = Json::obj(vec![
        ("pr", Json::Num(8.0)),
        (
            "trackers",
            Json::Arr(
                autorfm::trackers::names()
                    .iter()
                    .map(|n| Json::Str((*n).to_string()))
                    .collect(),
            ),
        ),
        ("slowdowns", slowdowns),
        ("oracle_gap_geomean", Json::Num(oracle_gap_geomean)),
    ]);
    println!("{}", record.to_compact());

    if !violations.is_empty() {
        eprintln!("tracker_zoo: oracle lower-bound gate FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(2);
    }
}

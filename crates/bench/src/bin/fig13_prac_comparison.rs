//! Figure 13: average slowdown of PRAC, RFM, and AutoRFM as the tolerated
//! Rowhammer threshold varies.
//!
//! Paper: PRAC ≥4% flat (longer timings); RFM explodes below TRH-D ~300;
//! AutoRFM stays at 2–3.1% down to TRH-D 74.

use autorfm::analysis::MintModel;
use autorfm::experiments::Scenario;
use autorfm_bench::{banner, pct, print_table, run, ResultCache, RunOpts, BASELINE_ZEN};

fn avg_slowdown(scen: Scenario, cache: &mut ResultCache, opts: &RunOpts) -> f64 {
    let mut sum = 0.0;
    for spec in &opts.workloads {
        let base = cache.get(spec, BASELINE_ZEN, opts).clone();
        sum += run(spec, scen, opts).slowdown_vs(&base);
    }
    sum / opts.workloads.len() as f64
}

fn main() {
    let opts = RunOpts::from_args();
    banner("Figure 13: PRAC vs RFM vs AutoRFM across thresholds", &opts);

    let mut cache = ResultCache::new();
    let mut rows = Vec::new();

    // RFM points: RFMTH -> (tolerated TRH-D from the recursive model, slowdown).
    for th in [4u32, 8, 16, 32] {
        let trhd = MintModel::rfm(th, true).tolerated_trh_d();
        let s = avg_slowdown(Scenario::Rfm { th }, &mut cache, &opts);
        rows.push(vec![
            "RFM".into(),
            format!("{th}"),
            format!("{trhd:.0}"),
            pct(s),
        ]);
    }
    // AutoRFM points (fractal model thresholds).
    for th in [4u32, 6, 8, 12, 16] {
        let trhd = MintModel::auto_rfm(th, false).tolerated_trh_d();
        let s = avg_slowdown(Scenario::AutoRfm { th }, &mut cache, &opts);
        rows.push(vec![
            "AutoRFM".into(),
            format!("{th}"),
            format!("{trhd:.0}"),
            pct(s),
        ]);
    }
    // PRAC: slowdown is dominated by the increased timings and is nearly flat
    // in the threshold; the ABO threshold tracks the tolerated TRH-D (MOAT).
    for abo in [64u32, 128, 256] {
        let s = avg_slowdown(Scenario::Prac { abo_th: abo }, &mut cache, &opts);
        rows.push(vec![
            "PRAC".into(),
            format!("ABO{abo}"),
            format!("{abo}"),
            pct(s),
        ]);
    }
    print_table(
        &["mechanism", "TH", "tolerated TRH-D", "avg slowdown"],
        &rows,
    );
    println!("\npaper: PRAC ~4% flat; RFM 33%/12.9%/4.4%/0.2% at TRH-D 96/182/356/702;");
    println!("       AutoRFM 3.1% at 74 falling to ~2% at 200-800.");
}

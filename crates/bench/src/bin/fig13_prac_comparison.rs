//! Figure 13: average slowdown of PRAC, RFM, and AutoRFM as the tolerated
//! Rowhammer threshold varies.
//!
//! Paper: PRAC ≥4% flat (longer timings); RFM explodes below TRH-D ~300;
//! AutoRFM stays at 2–3.1% down to TRH-D 74.

use autorfm::analysis::MintModel;
use autorfm::experiments::Scenario;
use autorfm_bench::{
    banner, pct, print_table, Harness, ResultCache, RunOpts, SimJob, BASELINE_ZEN,
};

const RFM_THS: [u32; 4] = [4, 8, 16, 32];
const AUTORFM_THS: [u32; 5] = [4, 6, 8, 12, 16];
const PRAC_ABOS: [u32; 3] = [64, 128, 256];

fn avg_slowdown(scen: Scenario, cache: &ResultCache, opts: &RunOpts) -> f64 {
    let mut sum = 0.0;
    for spec in &opts.workloads {
        let base = cache.get(spec, BASELINE_ZEN, opts);
        sum += cache.get(spec, scen, opts).slowdown_vs(&base);
    }
    sum / opts.workloads.len() as f64
}

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner("Figure 13: PRAC vs RFM vs AutoRFM across thresholds", &opts);

    let cache = ResultCache::new();
    let mut matrix: Vec<SimJob> = Vec::new();
    for spec in &opts.workloads {
        matrix.push((spec, BASELINE_ZEN));
        matrix.extend(RFM_THS.iter().map(|&th| (*spec, Scenario::Rfm { th })));
        matrix.extend(
            AUTORFM_THS
                .iter()
                .map(|&th| (*spec, Scenario::AutoRfm { th })),
        );
        matrix.extend(
            PRAC_ABOS
                .iter()
                .map(|&abo_th| (*spec, Scenario::Prac { abo_th })),
        );
    }
    cache.prefetch(&matrix, &opts);
    let mut rows = Vec::new();

    // RFM points: RFMTH -> (tolerated TRH-D from the recursive model, slowdown).
    for th in RFM_THS {
        let trhd = MintModel::rfm(th, true).tolerated_trh_d();
        let s = avg_slowdown(Scenario::Rfm { th }, &cache, &opts);
        rows.push(vec![
            "RFM".into(),
            format!("{th}"),
            format!("{trhd:.0}"),
            pct(s),
        ]);
    }
    // AutoRFM points (fractal model thresholds).
    for th in AUTORFM_THS {
        let trhd = MintModel::auto_rfm(th, false).tolerated_trh_d();
        let s = avg_slowdown(Scenario::AutoRfm { th }, &cache, &opts);
        rows.push(vec![
            "AutoRFM".into(),
            format!("{th}"),
            format!("{trhd:.0}"),
            pct(s),
        ]);
    }
    // PRAC: slowdown is dominated by the increased timings and is nearly flat
    // in the threshold; the ABO threshold tracks the tolerated TRH-D (MOAT).
    for abo in PRAC_ABOS {
        let s = avg_slowdown(Scenario::Prac { abo_th: abo }, &cache, &opts);
        rows.push(vec![
            "PRAC".into(),
            format!("ABO{abo}"),
            format!("{abo}"),
            pct(s),
        ]);
    }
    print_table(
        &["mechanism", "TH", "tolerated TRH-D", "avg slowdown"],
        &rows,
    );
    println!("\npaper: PRAC ~4% flat; RFM 33%/12.9%/4.4%/0.2% at TRH-D 96/182/356/702;");
    println!("       AutoRFM 3.1% at 74 falling to ~2% at 200-800.");

    harness.record_cache(&cache);
    harness.finish();
}

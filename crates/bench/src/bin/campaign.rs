//! Command-line client for `campaignd` (see `autorfm_campaign`).
//!
//! ```text
//! campaign (--addr HOST:PORT | --store DIR) <command> [args]
//! ```
//!
//! `--store DIR` reads the server address from `DIR/daemon.addr`, which
//! `campaignd` writes at startup. Commands:
//!
//! * `submit [--name N] [--workloads a,b] [--scenarios s,..] [--trackers t,..]
//!   [--thresholds n,..] [--cores N] [--instructions N] [--seed N]` —
//!   submit a sweep; prints the server's reply (campaign id + dedup counts),
//! * `status ID` — one campaign's progress,
//! * `wait ID` — poll until the campaign completes (exit 1 on a 10-minute
//!   timeout),
//! * `manifest ID` — the per-cell manifest (digests, perf, errors),
//! * `cell KEY` — one cell by 16-hex-digit key,
//! * `check ID` — re-run every cell of the campaign standalone (a direct
//!   `System` run, no daemon) and diff the result digests against the
//!   manifest; exits 1 on any mismatch, failed, or unfinished cell,
//! * `campaigns` / `stats` / `metrics` / `trackers` / `mitigations` /
//!   `workloads` — the matching GET endpoints,
//! * `shutdown` — stop the server.

use autorfm::experiments::Scenario;
use autorfm::snapshot::{digest64, Snapshot, Writer};
use autorfm::telemetry::Json;
use autorfm::workloads::WorkloadSpec;
use autorfm::{KernelKind, SimConfig, System};
use autorfm_campaign::http;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: campaign (--addr HOST:PORT | --store DIR) \
    <submit|status|wait|manifest|cell|check|campaigns|stats|metrics|trackers|mitigations|workloads|shutdown> [args]";

/// GET `path`, failing the process on transport errors or non-2xx statuses.
fn get(addr: &str, path: &str) -> Json {
    let (status, body) = http::request(addr, "GET", path, None)
        .unwrap_or_else(|e| panic!("GET {path} against {addr} failed: {e}"));
    if !(200..300).contains(&status) {
        eprintln!("GET {path}: HTTP {status}: {}", body.to_compact());
        std::process::exit(1);
    }
    body
}

/// Splits a comma-separated list into JSON strings (empty input → none).
fn csv(value: &str) -> Json {
    Json::Arr(
        value
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| Json::Str(s.to_string()))
            .collect(),
    )
}

/// Parses a numeric flag value into a [`Json::Num`].
fn num_flag(flag: &str, value: &str) -> Json {
    Json::Num(
        value
            .parse()
            .unwrap_or_else(|_| panic!("{flag} needs a number, got {value}")),
    )
}

/// Builds the `submit` payload (a `SweepRequest` in JSON form) from the
/// subcommand's remaining flags.
fn submit_payload(args: &mut impl Iterator<Item = String>) -> Json {
    let mut fields: Vec<(&str, Json)> = Vec::new();
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--name" => fields.push(("name", Json::Str(value()))),
            "--workloads" => fields.push(("workloads", csv(&value()))),
            "--scenarios" => fields.push(("scenarios", csv(&value()))),
            "--trackers" => fields.push(("trackers", csv(&value()))),
            "--thresholds" => {
                let list = value();
                fields.push((
                    "thresholds",
                    Json::Arr(
                        list.split(',')
                            .filter(|s| !s.is_empty())
                            .map(|v| num_flag("--thresholds", v))
                            .collect(),
                    ),
                ));
            }
            "--cores" => fields.push(("cores", num_flag("--cores", &value()))),
            "--instructions" => {
                fields.push(("instructions", num_flag("--instructions", &value())));
            }
            "--seed" => fields.push(("seed", num_flag("--seed", &value()))),
            other => panic!("unknown submit flag {other}"),
        }
    }
    Json::obj(fields)
}

/// `check ID`: re-runs every manifest cell standalone and diffs digests.
/// Returns the number of bad (mismatched, failed, or unfinished) cells.
fn check(addr: &str, id: &str) -> usize {
    let manifest = get(addr, &format!("/campaigns/{id}/manifest"));
    let cells = manifest
        .get("cells")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("manifest for {id} has no cells"));
    let mut bad = 0usize;
    for cell in cells {
        let label = format!(
            "{}/{}",
            cell.get("workload").and_then(Json::as_str).unwrap_or("?"),
            cell.get("scenario").and_then(Json::as_str).unwrap_or("?"),
        );
        let status = cell.get("status").and_then(Json::as_str).unwrap_or("?");
        if status != "done" {
            let error = cell.get("error").and_then(Json::as_str).unwrap_or("");
            eprintln!("check: {label}: status {status} {error}");
            bad += 1;
            continue;
        }
        let (Some(workload), Some(scenario), Some(digest)) = (
            cell.get("workload").and_then(Json::as_str),
            cell.get("scenario").and_then(Json::as_str),
            cell.get("result_digest").and_then(Json::as_str),
        ) else {
            eprintln!("check: {label}: manifest row is missing fields");
            bad += 1;
            continue;
        };
        let spec = WorkloadSpec::by_name(workload)
            .unwrap_or_else(|| panic!("unknown workload {workload}"));
        let parsed: Scenario = scenario
            .parse()
            .unwrap_or_else(|e| panic!("bad scenario {scenario}: {e}"));
        let cfg = SimConfig::builder(spec)
            .scenario(parsed)
            .cores(cell.get("cores").and_then(Json::as_u64).unwrap_or(8) as u8)
            .instructions(
                cell.get("instructions")
                    .and_then(Json::as_u64)
                    .unwrap_or(100_000),
            )
            .seed(cell.get("seed").and_then(Json::as_u64).unwrap_or(42))
            .build()
            .unwrap_or_else(|e| panic!("bad cell config for {label}: {e}"));
        let result = System::new(cfg)
            .unwrap_or_else(|e| panic!("build system for {label}: {e}"))
            .run_with(KernelKind::from_env());
        let mut w = Writer::new();
        result.encode(&mut w);
        let local = format!("{:#018x}", digest64(w.bytes()));
        if local == digest {
            println!("check: {label}: ok ({digest})");
        } else {
            eprintln!("check: {label}: MISMATCH server {digest} vs local {local}");
            bad += 1;
        }
    }
    bad
}

/// The next positional argument, or a usage panic.
fn next_arg(args: &mut impl Iterator<Item = String>) -> String {
    args.next()
        .unwrap_or_else(|| panic!("missing argument; {USAGE}"))
}

/// POSTs `path` with an optional body, printing the reply; exits 1 on a
/// non-2xx status.
fn post(addr: &str, path: &str, body: Option<&Json>) {
    let (status, reply) = http::request(addr, "POST", path, body)
        .unwrap_or_else(|e| panic!("POST {path} against {addr} failed: {e}"));
    println!("{}", reply.to_pretty());
    if !(200..300).contains(&status) {
        std::process::exit(1);
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr: Option<String> = None;
    let command = loop {
        match args.next().unwrap_or_else(|| panic!("{USAGE}")).as_str() {
            "--addr" => addr = Some(args.next().expect("--addr needs HOST:PORT")),
            "--store" => {
                let dir = std::path::PathBuf::from(args.next().expect("--store needs a directory"));
                let path = dir.join("daemon.addr");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
                addr = Some(text.trim().to_string());
            }
            cmd => break cmd.to_string(),
        }
    };
    let addr = addr.unwrap_or_else(|| panic!("no server address; {USAGE}"));
    match command.as_str() {
        "submit" => {
            let payload = submit_payload(&mut args);
            post(&addr, "/campaigns", Some(&payload));
        }
        "status" => println!(
            "{}",
            get(&addr, &format!("/campaigns/{}", next_arg(&mut args))).to_pretty()
        ),
        "wait" => {
            let id = next_arg(&mut args);
            let deadline = Instant::now() + Duration::from_secs(600);
            loop {
                let status = get(&addr, &format!("/campaigns/{id}"));
                if status.get("complete") == Some(&Json::Bool(true)) {
                    println!("{}", status.to_pretty());
                    break;
                }
                if Instant::now() >= deadline {
                    eprintln!("wait: campaign {id} did not complete in time");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        "manifest" => {
            println!(
                "{}",
                get(
                    &addr,
                    &format!("/campaigns/{}/manifest", next_arg(&mut args))
                )
                .to_pretty()
            );
        }
        "cell" => println!(
            "{}",
            get(&addr, &format!("/cells/{}", next_arg(&mut args))).to_pretty()
        ),
        "check" => {
            let bad = check(&addr, &next_arg(&mut args));
            if bad > 0 {
                eprintln!("check: {bad} bad cell(s)");
                std::process::exit(1);
            }
            println!("check: all cells match");
        }
        "campaigns" => println!("{}", get(&addr, "/campaigns").to_pretty()),
        "stats" => println!("{}", get(&addr, "/stats").to_pretty()),
        "metrics" => println!("{}", get(&addr, "/metrics").to_pretty()),
        "trackers" => println!("{}", get(&addr, "/trackers").to_pretty()),
        "mitigations" => println!("{}", get(&addr, "/mitigations").to_pretty()),
        "workloads" => println!("{}", get(&addr, "/workloads").to_pretty()),
        "shutdown" => post(&addr, "/shutdown", None),
        other => panic!("unknown command {other}; {USAGE}"),
    }
}

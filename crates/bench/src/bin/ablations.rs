//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Retry policy** (Section IV-C): the paper's simple whole-bank busy-bit
//!    vs the complex per-request alternative.
//! 2. **RFM latency** (Section II-E): tRFM = tRFC/2 (205 ns) vs tRFC (410 ns).
//! 3. **RAA REF credit** (Section II-E): REF reduces RAA by RFMTH vs RFMTH/2.
//! 4. **Minimal-pair mitigation** (Section IV-B): 2 victim refreshes shrink
//!    the SAUM window to 2·tRC and allow AutoRFMTH = 2 (at a lower tolerated
//!    threshold and with no transitive defense).

use autorfm::analysis::MintModel;
use autorfm::dram::RefreshPolicy;
use autorfm::experiments::Scenario;
use autorfm::memctrl::{PagePolicy, RaaRefCredit, RetryPolicy, WritePolicy};
use autorfm::sim_core::{Cycle, TimingOverride};
use autorfm::{SimConfig, System};
use autorfm_bench::{
    banner, par_map, pct, print_table, Harness, ResultCache, RunOpts, SimJob, BASELINE_ZEN,
};

/// Average slowdown of the custom-configured system vs the cached baseline,
/// with the per-workload simulations fanned out on `opts.jobs` threads.
fn avg<F: Fn(&'static autorfm_workloads::WorkloadSpec) -> SimConfig + Sync>(
    make: F,
    cache: &ResultCache,
    opts: &RunOpts,
) -> f64 {
    let slowdowns = par_map(&opts.workloads, opts.jobs, |spec| {
        let base = cache.get(spec, BASELINE_ZEN, opts);
        let r = System::new(make(spec)).expect("valid config").run();
        r.slowdown_vs(&base)
    });
    slowdowns.iter().sum::<f64>() / opts.workloads.len() as f64
}

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner(
        "Ablations: retry policy, tRFM, RAA credit, minimal-pair mitigation",
        &opts,
    );
    let cache = ResultCache::new();
    let baselines: Vec<SimJob> = opts.workloads.iter().map(|&s| (s, BASELINE_ZEN)).collect();
    cache.prefetch(&baselines, &opts);
    let instr = opts.instructions;
    let cores = opts.cores;
    let mut rows = Vec::new();

    // 1. Retry policy under the conflict-heavy Zen mapping.
    for (name, retry) in [
        ("whole-bank (paper)", RetryPolicy::WholeBank),
        ("per-request", RetryPolicy::PerRequest),
    ] {
        let s = avg(
            |spec| {
                let mut cfg = SimConfig::builder(spec)
                    .scenario(Scenario::AutoRfmZen { th: 4 })
                    .cores(cores)
                    .instructions(instr)
                    .build()
                    .expect("valid config");
                cfg.mc.retry = retry;
                cfg
            },
            &cache,
            &opts,
        );
        rows.push(vec!["retry policy".into(), name.into(), pct(s)]);
    }

    // 2. RFM latency: 205 ns vs 410 ns.
    for (name, ns) in [
        ("tRFM = 205ns (tRFC/2)", 205u64),
        ("tRFM = 410ns (tRFC)", 410),
    ] {
        let s = avg(
            |spec| {
                let mut cfg = SimConfig::builder(spec)
                    .scenario(Scenario::Rfm { th: 8 })
                    .cores(cores)
                    .instructions(instr)
                    .build()
                    .expect("valid config");
                cfg.timings = cfg.timings.with_override(TimingOverride {
                    t_rfm: Some(Cycle::from_ns(ns)),
                    ..TimingOverride::default()
                });
                cfg
            },
            &cache,
            &opts,
        );
        rows.push(vec!["RFM-8 latency".into(), name.into(), pct(s)]);
    }

    // 3. RAA REF credit.
    for (name, credit) in [
        ("REF credits RFMTH", RaaRefCredit::Full),
        ("REF credits RFMTH/2", RaaRefCredit::Half),
    ] {
        let s = avg(
            |spec| {
                let mut cfg = SimConfig::builder(spec)
                    .scenario(Scenario::Rfm { th: 16 })
                    .cores(cores)
                    .instructions(instr)
                    .build()
                    .expect("valid config");
                cfg.mc.raa_ref_credit = credit;
                cfg
            },
            &cache,
            &opts,
        );
        rows.push(vec!["RFM-16 RAA credit".into(), name.into(), pct(s)]);
    }

    // 4. Minimal-pair mitigation: AutoRFMTH down to 2.
    for th in [4u32, 2] {
        let s = avg(
            |spec| {
                SimConfig::builder(spec)
                    .scenario(Scenario::AutoRfmMinimal { th })
                    .cores(cores)
                    .instructions(instr)
                    .build()
                    .expect("valid config")
            },
            &cache,
            &opts,
        );
        let trhd = MintModel::auto_rfm(th, false).tolerated_trh_d();
        rows.push(vec![
            "minimal-pair".into(),
            format!("AutoRFMTH={th} (model TRH-D {trhd:.0})"),
            pct(s),
        ]);
    }

    // 5. Refresh scheduling: all-bank REFab vs staggered per-bank REFsb.
    for (name, policy) in [
        ("all-bank REFab (paper)", RefreshPolicy::AllBank),
        ("per-bank REFsb", RefreshPolicy::PerBank),
    ] {
        let s = avg(
            |spec| {
                let mut cfg = SimConfig::builder(spec)
                    .scenario(Scenario::AutoRfm { th: 4 })
                    .cores(cores)
                    .instructions(instr)
                    .build()
                    .expect("valid config");
                cfg.refresh = policy;
                cfg
            },
            &cache,
            &opts,
        );
        rows.push(vec!["refresh policy".into(), name.into(), pct(s)]);
    }

    // 6. Next-line prefetcher (extension; not in the paper's baseline).
    for (name, pf) in [("no prefetch (paper)", false), ("next-line prefetch", true)] {
        let s = avg(
            |spec| {
                let mut cfg = SimConfig::builder(spec)
                    .scenario(Scenario::AutoRfm { th: 4 })
                    .cores(cores)
                    .instructions(instr)
                    .build()
                    .expect("valid config");
                cfg.uncore.next_line_prefetch = pf;
                cfg
            },
            &cache,
            &opts,
        );
        rows.push(vec!["prefetcher".into(), name.into(), pct(s)]);
    }

    // 7. Page policy on the plain baseline (Section III: "closed-page policy
    // performs better than an open-page policy" under the Zen mapping).
    // Reported as slowdown vs the closed-page baseline.
    for (name, policy) in [
        (
            "closed w/ tRAS window (paper)",
            PagePolicy::ClosedWithinTras,
        ),
        ("open-page", PagePolicy::Open),
    ] {
        let s = avg(
            |spec| {
                let mut cfg = SimConfig::builder(spec)
                    .scenario(Scenario::Baseline {
                        mapping: autorfm::MappingKind::Zen,
                    })
                    .cores(cores)
                    .instructions(instr)
                    .build()
                    .expect("valid config");
                cfg.mc.page_policy = policy;
                cfg
            },
            &cache,
            &opts,
        );
        rows.push(vec!["page policy".into(), name.into(), pct(s)]);
    }

    // 8. Write scheduling: inline FCFS vs watermark-buffered draining.
    for (name, policy) in [
        ("inline FCFS (paper model)", WritePolicy::Inline),
        (
            "buffered, drain 48/16",
            WritePolicy::Buffered {
                capacity: 64,
                high: 48,
                low: 16,
            },
        ),
    ] {
        let s = avg(
            |spec| {
                let mut cfg = SimConfig::builder(spec)
                    .scenario(Scenario::AutoRfm { th: 4 })
                    .cores(cores)
                    .instructions(instr)
                    .build()
                    .expect("valid config");
                cfg.mc.write_policy = policy;
                cfg
            },
            &cache,
            &opts,
        );
        rows.push(vec!["write policy".into(), name.into(), pct(s)]);
    }

    print_table(&["ablation", "variant", "avg slowdown"], &rows);

    harness.record_cache(&cache);
    harness.finish();
}

//! Figure 12: DRAM power for baseline, Rubix, AutoRFM-8, AutoRFM-4.
//!
//! Paper: Rubix adds ~36 mW of activation power; AutoRFM-8/-4 add 28/55 mW of
//! mitigation power (65–92 mW total over baseline).

use autorfm::experiments::Scenario;
use autorfm::power::PowerModel;
use autorfm_bench::{
    banner, print_table, Harness, ResultCache, RunOpts, SimJob, BASELINE_RUBIX, BASELINE_ZEN,
};

fn main() {
    let opts = RunOpts::from_args();
    let mut harness = Harness::new(&opts);
    banner("Figure 12: DRAM power breakdown", &opts);

    let configs = [
        ("baseline", BASELINE_ZEN),
        ("rubix", BASELINE_RUBIX),
        ("AutoRFM-8", Scenario::AutoRfm { th: 8 }),
        ("AutoRFM-4", Scenario::AutoRfm { th: 4 }),
    ];
    let cache = ResultCache::new();
    let matrix: Vec<SimJob> = configs
        .iter()
        .flat_map(|&(_, scen)| opts.workloads.iter().map(move |&spec| (spec, scen)))
        .collect();
    cache.prefetch(&matrix, &opts);
    let model = PowerModel::ddr5();
    let mut rows = Vec::new();
    let mut base_total = None;

    for (name, scen) in configs {
        // Average the breakdown across workloads.
        let mut acc = autorfm::power::PowerBreakdown::default();
        for spec in &opts.workloads {
            let r = cache.get(spec, scen, &opts);
            let p = model.breakdown(&r.power_counts, r.elapsed.as_secs_f64());
            acc.act_rw_mw += p.act_rw_mw;
            acc.background_mw += p.background_mw;
            acc.refresh_mw += p.refresh_mw;
            acc.mitigation_mw += p.mitigation_mw;
        }
        let n = opts.workloads.len() as f64;
        let p = autorfm::power::PowerBreakdown {
            act_rw_mw: acc.act_rw_mw / n,
            background_mw: acc.background_mw / n,
            refresh_mw: acc.refresh_mw / n,
            mitigation_mw: acc.mitigation_mw / n,
        };
        let total = p.total_mw();
        let delta = base_total.map_or(0.0, |b: f64| total - b);
        if base_total.is_none() {
            base_total = Some(total);
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", p.act_rw_mw),
            format!("{:.0}", p.background_mw),
            format!("{:.0}", p.refresh_mw),
            format!("{:.0}", p.mitigation_mw),
            format!("{total:.0}"),
            format!("{delta:+.0}"),
        ]);
    }
    print_table(
        &[
            "config",
            "ACT+RD/WR",
            "other",
            "refresh",
            "mitig",
            "total mW",
            "vs base",
        ],
        &rows,
    );
    println!("\npaper deltas: rubix +36 mW, AutoRFM-8 +65 mW, AutoRFM-4 +92 mW");

    harness.record_cache(&cache);
    harness.finish();
}

//! Table III: threshold tolerated by MINT (Appendix-A model).
//!
//! Paper values (MINT with recursive transitive handling under RFM):
//! W=4 → 96, W=8 → 182, W=16 → 356, W=32 → 702.

use autorfm::analysis::MintModel;
use autorfm_bench::print_table;

fn main() {
    println!("=== Table III: TRH-D tolerated by MINT vs window (Appendix A) ===\n");
    let paper = [(4u32, 96u32), (8, 182), (16, 356), (32, 702)];
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|&(w, p)| {
            let model = MintModel::rfm(w, true).tolerated_trh_d();
            vec![
                format!("{w}"),
                format!("{model:.0}"),
                format!("{p}"),
                format!("{:+.1}%", (model - p as f64) / p as f64 * 100.0),
            ]
        })
        .collect();
    print_table(
        &["window (W)", "model TRH-D", "paper TRH-D", "delta"],
        &rows,
    );
}

//! # autorfm-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md for the index), plus Criterion micro-benchmarks (`benches/`).
//!
//! Every binary accepts the same flags:
//!
//! * `--quick` — 25K instructions/core (smoke-test fidelity),
//! * `--full` — 400K instructions/core (report fidelity),
//! * `--instructions N`, `--cores N`, `--workloads a,b,c` — manual control,
//! * `--jobs N` — worker threads for the simulation fan-out (see below),
//! * `--batch N` — batched lockstep lanes per `SimBatch` (env `AUTORFM_BATCH`;
//!   default 1 = unbatched; see below),
//! * `--telemetry` — record epoch time series and full final-metric
//!   registries, and write a `results/<target>.json` manifest
//!   (env `AUTORFM_TELEMETRY=1`; see [`Harness`]),
//! * `--epoch-ns N` — telemetry sampling window (default: one tREFI),
//! * `--telemetry-csv DIR` — stream each run's epoch series as CSV.
//!
//! Defaults: 100K instructions/core, 8 cores, all 21 Table-V workloads.
//!
//! ## Parallel execution
//!
//! Each `(workload, scenario)` simulation is completely independent and
//! deterministic given its seed, so the harness fans the experiment matrix out
//! across threads:
//!
//! * [`run_matrix`] runs a slice of `(workload, scenario)` jobs on
//!   `opts.jobs` scoped worker threads (an atomic work index — no external
//!   thread-pool dependency) and returns results **in input order**,
//!   regardless of completion order.
//! * [`ResultCache`] is shared and thread-safe: each distinct
//!   `(workload, scenario)` key is simulated **exactly once** even when many
//!   scenarios request it concurrently (e.g. the Zen/Rubix baselines every
//!   figure normalizes against), via a `Mutex<HashMap>` of per-key
//!   `OnceLock` slots.
//! * [`par_map`] is the underlying generic fan-out for experiments that build
//!   custom [`SimConfig`]s (ablations, seed sweeps).
//!
//! `--jobs N` selects the worker count; the default is the machine's
//! available parallelism, and the `AUTORFM_JOBS` environment variable
//! overrides it (set `AUTORFM_JOBS=1` for strictly serial execution).
//! **Determinism guarantee:** simulations share no mutable state, so every
//! `SimResult` — and therefore every table and figure — is bitwise identical
//! for any `--jobs` value; only wall-clock changes. Expected speedup on an
//! N-thread host is close to N× for the big matrices (21 workloads × several
//! scenarios), bounded by the longest single simulation.
//!
//! ## Batched lockstep execution
//!
//! With `--batch N` (env `AUTORFM_BATCH=N`, default 1), [`run_matrix`] groups
//! same-shape jobs — equal `autorfm::warm_digest`, i.e. same workloads, core
//! count, seed, and warmup — into `autorfm::SimBatch`es of up to N lanes each
//! and runs every group in one lockstep pass: warmup simulated once per
//! batch, the instruction trace generated once per core and replayed by all
//! lanes, and the lanes advanced in cache-friendly chunks. Batching is a pure
//! scheduling transform: every lane is bitwise identical to its standalone
//! run (pinned by `tests/batch_differential.rs`), so `--batch` — like
//! `--jobs` — changes wall-clock only, never results. Telemetry-enabled runs
//! are never batched (their sinks are per-run side channels).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use autorfm::experiments::Scenario;
use autorfm::snapshot::store::{cell_key, CellRecord, CellStore};
use autorfm::snapshot::{open, write_file, Reader, SnapError, Snapshot, Writer, KIND_RESULTS};
use autorfm::telemetry::{Json, Labels, RunEntry, RunManifest};
use autorfm::trackers::TrackerKind;
use autorfm::{
    warm_digest, KernelKind, MappingKind, SimConfig, SimResult, System, TelemetryConfig,
};
use autorfm_campaign::run_batch_fallible;
use autorfm_sim_core::Cycle;
use autorfm_workloads::{WorkloadSpec, ALL_WORKLOADS};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Common run options for every experiment binary.
///
/// Three layers, later layers overriding earlier ones (**CLI > env >
/// default**):
///
/// 1. [`RunOpts::default`] — pure built-in defaults, no environment reads;
/// 2. [`RunOpts::from_env`] — the defaults plus every `AUTORFM_*` environment
///    knob, read in this one place;
/// 3. [`RunOpts::from_args`] — the environment layer plus command-line flags.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Cores per simulation.
    pub cores: u8,
    /// Instructions per core.
    pub instructions: u64,
    /// Workloads to simulate.
    pub workloads: Vec<&'static WorkloadSpec>,
    /// Worker threads for [`run_matrix`] / [`par_map`] (`--jobs N`,
    /// env `AUTORFM_JOBS`; default: available parallelism).
    pub jobs: usize,
    /// Record epoch time series and final-metric registries
    /// (`--telemetry`, env `AUTORFM_TELEMETRY=1`; default off — the default
    /// path is bitwise identical to a build without telemetry).
    pub telemetry: bool,
    /// Telemetry epoch length in nanoseconds (`--epoch-ns N`, implies
    /// `--telemetry`; default: one tREFI).
    pub epoch_ns: Option<u64>,
    /// Stream each run's epoch series as CSV into this directory
    /// (`--telemetry-csv DIR`, implies `--telemetry`).
    pub telemetry_csv: Option<PathBuf>,
    /// Child-process pool size for `run_all` (env `AUTORFM_PROCS`;
    /// `None` = derive from host parallelism and the per-child `--jobs`).
    pub procs: Option<usize>,
    /// Checkpoint file for [`ResultCache::new`] (env `AUTORFM_CHECKPOINT`;
    /// `None` disables checkpointing).
    pub checkpoint: Option<PathBuf>,
    /// Root of the campaign service's content-addressed cell store (env
    /// `AUTORFM_STORE`). When set, [`ResultCache::new`] reads and writes
    /// per-cell records there — shared with `campaignd` — and the per-target
    /// checkpoint file is bypassed.
    pub store: Option<PathBuf>,
    /// Whether [`run`] may fork from cached warm snapshots
    /// (default yes; env `AUTORFM_NO_WARM_FORK=1` disables).
    pub warm_fork: bool,
    /// Simulation kernel (`--kernel stepped|event`, env
    /// `AUTORFM_STEPPED_KERNEL=1`; default: the event kernel).
    pub kernel: KernelKind,
    /// Tracker override for tracker-sweep binaries (`--tracker NAME`; see
    /// `autorfm::trackers::names()`; default: each binary's own set).
    pub tracker: Option<TrackerKind>,
    /// Minimum acceptable geomean event-vs-stepped kernel speedup for
    /// `perf_smoke` (`--gate-speedup MIN`; default `None` = report only).
    /// With a gate set, a slower event kernel exits nonzero instead of
    /// hiding the regression in JSON.
    pub gate_speedup: Option<f64>,
    /// Lockstep lanes per [`autorfm::SimBatch`] when grouping same-shape
    /// matrix jobs (`--batch N`, env `AUTORFM_BATCH`; default 1 = unbatched).
    pub batch: usize,
    /// Minimum acceptable batched-vs-sequential aggregate speedup for
    /// `perf_smoke` (`--gate-batch-speedup MIN`; default `None` = report
    /// only). With a gate set, a batch slower than running its lanes one by
    /// one exits nonzero instead of hiding the regression in JSON.
    pub gate_batch_speedup: Option<f64>,
}

/// The default worker-thread count: `AUTORFM_JOBS` if set and valid,
/// otherwise the machine's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    RunOpts::from_env().jobs
}

/// `1`/`true` (case-insensitive) means on.
fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

impl Default for RunOpts {
    /// Pure built-in defaults; reads no environment. Use
    /// [`RunOpts::from_env`] (or [`RunOpts::from_args`]) to honor the
    /// `AUTORFM_*` knobs.
    fn default() -> Self {
        RunOpts {
            cores: 8,
            instructions: 100_000,
            workloads: ALL_WORKLOADS.iter().collect(),
            jobs: std::thread::available_parallelism().map_or(1, usize::from),
            telemetry: false,
            epoch_ns: None,
            telemetry_csv: None,
            procs: None,
            checkpoint: None,
            store: None,
            warm_fork: true,
            kernel: KernelKind::Event,
            tracker: None,
            gate_speedup: None,
            batch: 1,
            gate_batch_speedup: None,
        }
    }
}

impl RunOpts {
    /// The defaults overridden by the `AUTORFM_*` environment knobs. This is
    /// the single place the harness reads them:
    ///
    /// | variable                 | effect                                   |
    /// |--------------------------|------------------------------------------|
    /// | `AUTORFM_JOBS=N`         | worker threads ([`RunOpts::jobs`])       |
    /// | `AUTORFM_PROCS=N`        | `run_all` process pool ([`RunOpts::procs`]) |
    /// | `AUTORFM_TELEMETRY=1`    | epoch telemetry on ([`RunOpts::telemetry`]) |
    /// | `AUTORFM_CHECKPOINT=F`   | result checkpoint file ([`RunOpts::checkpoint`]) |
    /// | `AUTORFM_STORE=DIR`      | content-addressed cell store ([`RunOpts::store`]) |
    /// | `AUTORFM_NO_WARM_FORK=1` | disable warm forking ([`RunOpts::warm_fork`]) |
    /// | `AUTORFM_STEPPED_KERNEL=1` | stepped oracle kernel ([`RunOpts::kernel`]) |
    /// | `AUTORFM_BATCH=N`        | lockstep lanes per batch ([`RunOpts::batch`]) |
    ///
    /// (`AUTORFM_STEPPED_KERNEL` is decoded by [`KernelKind::from_env`] so
    /// the library default path and the harness agree on one reader.)
    pub fn from_env() -> Self {
        let mut opts = RunOpts::default();
        if let Some(n) = std::env::var("AUTORFM_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            opts.jobs = n.max(1);
        }
        opts.procs = std::env::var("AUTORFM_PROCS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1);
        opts.telemetry = env_flag("AUTORFM_TELEMETRY");
        opts.checkpoint = std::env::var("AUTORFM_CHECKPOINT")
            .ok()
            .filter(|p| !p.is_empty())
            .map(PathBuf::from);
        opts.store = std::env::var("AUTORFM_STORE")
            .ok()
            .filter(|p| !p.is_empty())
            .map(PathBuf::from);
        opts.warm_fork = !env_flag("AUTORFM_NO_WARM_FORK");
        opts.kernel = KernelKind::from_env();
        if let Some(n) = std::env::var("AUTORFM_BATCH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            opts.batch = n.max(1);
        }
        opts
    }

    /// Parses `std::env::args()` on top of [`RunOpts::from_env`]
    /// (CLI > env > default).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = RunOpts::from_env();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.instructions = 25_000,
                "--full" => opts.instructions = 400_000,
                "--instructions" => {
                    opts.instructions = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--instructions needs a number");
                }
                "--cores" => {
                    opts.cores =
                        args.next().and_then(|v| v.parse().ok()).expect("--cores needs a number");
                }
                "--jobs" => {
                    opts.jobs = args
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .map(|n| n.max(1))
                        .expect("--jobs needs a positive number");
                }
                "--workloads" => {
                    let list = args.next().expect("--workloads needs a comma-separated list");
                    opts.workloads = list
                        .split(',')
                        .map(|n| {
                            WorkloadSpec::by_name(n)
                                .unwrap_or_else(|| panic!("unknown workload {n}"))
                        })
                        .collect();
                }
                "--telemetry" => opts.telemetry = true,
                "--epoch-ns" => {
                    opts.telemetry = true;
                    opts.epoch_ns = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .expect("--epoch-ns needs a positive number"),
                    );
                }
                "--telemetry-csv" => {
                    opts.telemetry = true;
                    opts.telemetry_csv =
                        Some(args.next().expect("--telemetry-csv needs a directory").into());
                }
                "--kernel" => {
                    let v = args.next().expect("--kernel needs stepped|event");
                    opts.kernel = KernelKind::parse(&v)
                        .unwrap_or_else(|| panic!("--kernel: unknown kernel {v} (stepped|event)"));
                }
                "--tracker" => {
                    let v = args.next().expect("--tracker needs a tracker name");
                    opts.tracker = Some(
                        v.parse::<TrackerKind>()
                            .unwrap_or_else(|e| panic!("--tracker: {e}")),
                    );
                }
                "--gate-speedup" => {
                    opts.gate_speedup = Some(
                        args.next()
                            .and_then(|v| v.parse::<f64>().ok())
                            .filter(|m| m.is_finite() && *m > 0.0)
                            .expect("--gate-speedup needs a positive number"),
                    );
                }
                "--batch" => {
                    opts.batch = args
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .map(|n| n.max(1))
                        .expect("--batch needs a positive number");
                }
                "--gate-batch-speedup" => {
                    opts.gate_batch_speedup = Some(
                        args.next()
                            .and_then(|v| v.parse::<f64>().ok())
                            .filter(|m| m.is_finite() && *m > 0.0)
                            .expect("--gate-batch-speedup needs a positive number"),
                    );
                }
                other => panic!(
                    "unknown flag {other}; expected --quick|--full|--instructions N|--cores N|--jobs N|--workloads a,b|--telemetry|--epoch-ns N|--telemetry-csv DIR|--kernel K|--tracker T|--gate-speedup MIN|--batch N|--gate-batch-speedup MIN"
                ),
            }
        }
        opts
    }
}

/// Builds the [`TelemetryConfig`] `opts` asks for (`None` when disabled).
/// `tag` names the streamed CSV file inside `opts.telemetry_csv`.
pub fn telemetry_config(opts: &RunOpts, tag: &str) -> Option<TelemetryConfig> {
    if !opts.telemetry {
        return None;
    }
    let csv_path = opts.telemetry_csv.as_ref().map(|dir| {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
        }
        dir.join(format!("{tag}.csv"))
    });
    Some(TelemetryConfig {
        epoch: opts.epoch_ns.map(Cycle::from_ns),
        max_samples: None,
        csv_path,
    })
}

/// The [`SimConfig`] for one `(workload, scenario)` job under `opts`.
fn job_config(spec: &'static WorkloadSpec, scenario: Scenario, opts: &RunOpts) -> SimConfig {
    try_job_config(spec, scenario, opts).expect("valid scenario config")
}

/// [`job_config`] without the panic — the batched prefetch path turns an
/// invalid cell into a [`CellFailure`] record instead of dying.
fn try_job_config(
    spec: &'static WorkloadSpec,
    scenario: Scenario,
    opts: &RunOpts,
) -> Result<SimConfig, autorfm_sim_core::ConfigError> {
    let mut builder = SimConfig::builder(spec)
        .scenario(scenario)
        .cores(opts.cores)
        .instructions(opts.instructions);
    if let Some(t) = telemetry_config(opts, &format!("{}__{scenario}", spec.name)) {
        builder = builder.telemetry(t);
    }
    builder.build()
}

/// Runs one workload under one scenario.
///
/// Warmup is shared: the first job per warm key (workload set, core count,
/// seed, warmup length, LLC shape, geometry — see `autorfm::warm_digest`)
/// simulates warmup once into the process-global [`WarmCache`]; every later
/// job forks from that snapshot. Forked runs are bitwise identical to cold
/// runs (pinned by the golden tests), so only wall-clock changes. Clear
/// [`RunOpts::warm_fork`] (env `AUTORFM_NO_WARM_FORK=1`) to force the cold
/// path everywhere; [`RunOpts::kernel`] selects the simulation kernel.
pub fn run(spec: &'static WorkloadSpec, scenario: Scenario, opts: &RunOpts) -> SimResult {
    let cfg = job_config(spec, scenario, opts);
    if opts.warm_fork {
        warm_cache().system(cfg).run_with(opts.kernel)
    } else {
        System::new(cfg)
            .expect("valid scenario config")
            .run_with(opts.kernel)
    }
}

/// Cold-path variant of [`run`] that always re-simulates warmup, bypassing the
/// [`WarmCache`]. Exists for A/B wall-clock measurement (`perf_smoke`) and for
/// callers that must not share process-global state.
pub fn run_cold(spec: &'static WorkloadSpec, scenario: Scenario, opts: &RunOpts) -> SimResult {
    System::new(job_config(spec, scenario, opts))
        .expect("valid scenario config")
        .run_with(opts.kernel)
}

/// One cached warm snapshot: filled exactly once by the first requester;
/// concurrent requesters block on it.
type WarmSlot = Arc<OnceLock<Arc<Vec<u8>>>>;

/// A thread-safe cache of warm-state snapshots keyed by `autorfm::warm_digest`.
///
/// Scenario sweeps run the same workloads under many mitigation settings, and
/// warmup (64K memory ops per core by default) depends on none of them — so
/// the cache simulates each distinct warmup exactly once and every other run
/// forks from the in-memory snapshot via `System::new_from_warm`. The
/// rendezvous discipline is the same as [`ResultCache`]: a per-key
/// [`OnceLock`] fills once, concurrent requesters block until it's ready.
#[derive(Default)]
pub struct WarmCache {
    slots: Mutex<HashMap<u64, WarmSlot>>,
    warmups: AtomicUsize,
    forks: AtomicUsize,
}

impl WarmCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the machine for `cfg`, forking from the cached warm snapshot
    /// for its warm key — simulating warmup first if this is the key's first
    /// request. The result is bitwise identical to `System::new(cfg)`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or the internal lock is poisoned.
    pub fn system(&self, cfg: SimConfig) -> System {
        let key = warm_digest(&cfg);
        let slot = {
            let mut map = self.slots.lock().expect("warm cache lock poisoned");
            map.entry(key).or_default().clone()
        };
        let warm = slot
            .get_or_init(|| {
                self.warmups.fetch_add(1, Ordering::Relaxed);
                // The donor exists only to produce warm bytes; don't let it
                // open telemetry sinks meant for the real run.
                let mut donor_cfg = cfg.clone();
                donor_cfg.telemetry = None;
                Arc::new(System::new(donor_cfg).expect("valid config").warm_state())
            })
            .clone();
        self.forks.fetch_add(1, Ordering::Relaxed);
        System::new_from_warm(cfg, &warm).expect("warm fork under matching digest")
    }

    /// Number of warmups actually simulated (cache misses).
    pub fn warmups(&self) -> usize {
        self.warmups.load(Ordering::Relaxed)
    }

    /// Number of systems built by forking (every [`WarmCache::system`] call).
    pub fn forks(&self) -> usize {
        self.forks.load(Ordering::Relaxed)
    }
}

/// The process-global warm cache [`run`] forks from.
pub fn warm_cache() -> &'static WarmCache {
    static CACHE: OnceLock<WarmCache> = OnceLock::new();
    CACHE.get_or_init(WarmCache::default)
}

/// One entry of an experiment matrix: a workload under a scenario.
pub type SimJob = (&'static WorkloadSpec, Scenario);

/// Applies `f` to every item on `jobs` scoped worker threads, returning
/// results in input order regardless of completion order.
///
/// Work is distributed through an atomic index, so uneven item costs balance
/// automatically. With `jobs <= 1` (or a single item) the map runs serially
/// on the calling thread — the `AUTORFM_JOBS=1` reproduction path.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Runs a `(workload, scenario)` matrix in parallel, returning results in
/// input order.
///
/// Duplicate jobs are simulated once (a fresh shared [`ResultCache`] dedups
/// them) and the duplicates receive clones. Use [`ResultCache::prefetch`]
/// instead when the cache should outlive the call.
pub fn run_matrix(jobs: &[SimJob], opts: &RunOpts) -> Vec<SimResult> {
    run_matrix_cached(jobs, opts, &ResultCache::new())
}

/// [`run_matrix`] against a caller-supplied cache (so the cache — and its
/// checkpoint wiring, or deliberate lack of it — can outlive the call).
///
/// With [`RunOpts::batch`] > 1, same-shape jobs are first simulated in
/// lockstep batches ([`ResultCache::prefetch_batched`]); the per-job `get`s
/// below then hit the warmed cache. Results are bitwise identical either way.
pub fn run_matrix_cached(jobs: &[SimJob], opts: &RunOpts, cache: &ResultCache) -> Vec<SimResult> {
    if opts.batch > 1 && !opts.telemetry {
        cache.prefetch_batched(jobs, opts);
    }
    let results = par_map(jobs, opts.jobs, |&(spec, scenario)| {
        cache.get(spec, scenario, opts)
    });
    results.into_iter().map(|arc| (*arc).clone()).collect()
}

/// Cache key: (scenario display name, workload name).
type CacheKey = (String, &'static str);

/// One cached simulation: its `OnceLock` is filled exactly once by the first
/// requester; concurrent requesters block on it.
type CacheSlot = Arc<OnceLock<Arc<SimResult>>>;

/// A thread-safe cache of per-`(workload, scenario)` results so shared
/// scenarios (the normalization baselines above all) are simulated only once.
///
/// Concurrent `get`s for the same key rendezvous on a per-key
/// [`OnceLock`]: the first caller simulates, the rest block until the result
/// is ready — never re-running the simulation.
#[derive(Default)]
pub struct ResultCache {
    results: Mutex<HashMap<CacheKey, CacheSlot>>,
    runs: AtomicUsize,
    checkpoint: Option<Arc<CheckpointFile>>,
    store: Option<Arc<CellStore>>,
    failures: Mutex<Vec<CellFailure>>,
}

/// One cell that failed during a batched prefetch: the job's identity plus
/// the panic or configuration-error text. Recorded by
/// [`ResultCache::prefetch_batched`] instead of letting a single bad lane
/// poison its whole batch; read back via [`ResultCache::failures`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Workload name of the failed job.
    pub workload: &'static str,
    /// Scenario display name of the failed job.
    pub scenario: String,
    /// The job's [`job_digest`] / store cell key.
    pub key: u64,
    /// Why it failed (panic message or configuration error).
    pub error: String,
}

impl ResultCache {
    /// Creates an empty cache honoring the environment's persistence knobs:
    /// `AUTORFM_STORE` (the campaign service's content-addressed cell store,
    /// preferred) or `AUTORFM_CHECKPOINT` (the per-target checkpoint file
    /// `run_all` sets up). Either way completed results are reloaded and
    /// every fresh simulation is persisted — so a killed experiment resumes
    /// instead of starting over. Use [`ResultCache::isolated`] to opt out,
    /// or [`ResultCache::with_checkpoint`] / [`ResultCache::with_store`] to
    /// pass an explicit path.
    pub fn new() -> Self {
        let env = RunOpts::from_env();
        match env.store {
            Some(root) => Self::with_store(root),
            None => Self::with_checkpoint(env.checkpoint),
        }
    }

    /// Creates an empty cache backed by the given checkpoint file (`None`
    /// disables checkpointing).
    pub fn with_checkpoint(path: Option<PathBuf>) -> Self {
        ResultCache {
            checkpoint: path.map(|p| Arc::new(CheckpointFile::load(p))),
            ..Self::default()
        }
    }

    /// Creates an empty cache backed by the content-addressed cell store at
    /// `root` — the same store `campaignd` serves, so harness runs and
    /// campaign cells share one result per sweep point. An unopenable store
    /// degrades (with a warning) to a plain in-memory cache.
    pub fn with_store(root: PathBuf) -> Self {
        let store = match CellStore::open(&root) {
            Ok(store) => Some(Arc::new(store)),
            Err(e) => {
                eprintln!("warning: could not open store {}: {e}", root.display());
                None
            }
        };
        ResultCache {
            store,
            ..Self::default()
        }
    }

    /// Creates an empty cache that never touches a checkpoint file, even when
    /// `AUTORFM_CHECKPOINT` is set — for A/B timing passes (`perf_smoke`)
    /// whose wall clocks would be meaningless with reloaded results.
    pub fn isolated() -> Self {
        Self::default()
    }

    /// Runs (or returns the cached result of) `scenario` on `spec`.
    ///
    /// Telemetry-enabled runs always simulate: their epoch series cannot be
    /// checkpointed (see `SimResult`'s snapshot docs), and a reloaded result
    /// would silently lose it.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a simulation panicked).
    pub fn get(
        &self,
        spec: &'static WorkloadSpec,
        scenario: Scenario,
        opts: &RunOpts,
    ) -> Arc<SimResult> {
        let slot = self.slot((scenario.to_string(), spec.name));
        slot.get_or_init(|| {
            let key = job_digest(spec, scenario, opts);
            if !opts.telemetry {
                if let Some(prior) = self.persisted(key) {
                    return Arc::new(prior);
                }
            }
            self.runs.fetch_add(1, Ordering::Relaxed);
            let result = run(spec, scenario, opts);
            if !opts.telemetry {
                self.persist(key, &result);
            }
            Arc::new(result)
        })
        .clone()
    }

    /// The completed result persisted under `key` — from the cell store when
    /// one is configured, else the checkpoint file. A store record of a
    /// *failed* cell is not a result: the job re-runs (and re-fails, loudly)
    /// rather than silently vanishing from the matrix.
    fn persisted(&self, key: u64) -> Option<SimResult> {
        if let Some(store) = &self.store {
            let bytes = store.get(key)?.outcome.ok()?;
            return SimResult::decode(&mut Reader::new(&bytes)).ok();
        }
        self.checkpoint.as_ref()?.get(key)
    }

    /// Persists a completed result under `key` (store preferred, else
    /// checkpoint, else nothing).
    fn persist(&self, key: u64, result: &SimResult) {
        if let Some(store) = &self.store {
            let mut w = Writer::new();
            result.encode(&mut w);
            if let Err(e) = store.put(key, &CellRecord::ok(key, w.into_bytes())) {
                eprintln!("warning: could not write store cell {key:016x}: {e}");
            }
        } else if let Some(c) = &self.checkpoint {
            c.put(key, result);
        }
    }

    /// Every [`CellFailure`] recorded by [`ResultCache::prefetch_batched`]
    /// so far, in recording order.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn failures(&self) -> Vec<CellFailure> {
        self.failures
            .lock()
            .expect("failures lock poisoned")
            .clone()
    }

    /// Records one failed cell: a structured [`CellFailure`] in memory and,
    /// with a store configured, a persisted failed-cell record.
    fn record_failure(
        &self,
        spec: &'static WorkloadSpec,
        scenario: Scenario,
        opts: &RunOpts,
        error: String,
    ) {
        let key = job_digest(spec, scenario, opts);
        if let Some(store) = &self.store {
            let _ = store.put(key, &CellRecord::failed(key, error.clone()));
        }
        self.failures
            .lock()
            .expect("failures lock poisoned")
            .push(CellFailure {
                workload: spec.name,
                scenario: scenario.to_string(),
                key,
                error,
            });
    }

    /// Simulates every job in the matrix on `opts.jobs` threads, warming the
    /// cache so later `get`s are instant hits. Duplicate keys (and keys
    /// already cached) are simulated only once.
    pub fn prefetch(&self, jobs: &[SimJob], opts: &RunOpts) {
        par_map(jobs, opts.jobs, |&(spec, scenario)| {
            self.get(spec, scenario, opts);
        });
    }

    /// The rendezvous slot for `key`, creating it if absent.
    fn slot(&self, key: CacheKey) -> CacheSlot {
        let mut map = self.results.lock().expect("cache lock poisoned");
        map.entry(key).or_default().clone()
    }

    /// Batched [`ResultCache::prefetch`]: groups the not-yet-cached jobs by
    /// warm shape (`autorfm::warm_digest` of their configs), splits each
    /// group into `autorfm::SimBatch`es of up to [`RunOpts::batch`] lanes,
    /// and runs the batches on `opts.jobs` threads. Each lane's result lands
    /// in the job's cache slot (and the store or checkpoint, when configured)
    /// exactly as an unbatched run would have put it — lanes are bitwise
    /// identical to standalone simulations, so later `get`s cannot tell the
    /// difference.
    ///
    /// Jobs already cached, or already persisted on disk, are skipped here
    /// and served by `get` as usual. Telemetry runs are not batched.
    ///
    /// Batches execute through `autorfm_campaign::run_batch_fallible`, so a
    /// lane that panics (or a cell whose configuration is invalid) does not
    /// poison its batchmates: the healthy lanes still fill their slots, and
    /// the bad cell becomes a structured [`CellFailure`] record — cell key
    /// plus error text — readable via [`ResultCache::failures`] (and, with a
    /// store configured, a persisted failed-cell record).
    ///
    /// # Panics
    ///
    /// Panics if a lock is poisoned.
    pub fn prefetch_batched(&self, jobs: &[SimJob], opts: &RunOpts) {
        if opts.batch <= 1 || opts.telemetry {
            self.prefetch(jobs, opts);
            return;
        }
        // Dedup to first-seen order and drop jobs something already answers.
        let mut seen: HashSet<CacheKey> = HashSet::new();
        let mut pending: Vec<SimJob> = Vec::new();
        for &(spec, scenario) in jobs {
            let key = (scenario.to_string(), spec.name);
            if !seen.insert(key.clone()) || self.slot(key).get().is_some() {
                continue;
            }
            if self.persisted(job_digest(spec, scenario, opts)).is_none() {
                pending.push((spec, scenario));
            }
        }
        // Group by warm shape (first-seen group order for determinism), then
        // chunk each group to the requested lane count. A cell whose
        // configuration won't even build becomes a failure record here,
        // before any lane runs.
        let mut order: Vec<u64> = Vec::new();
        let mut groups: HashMap<u64, Vec<SimJob>> = HashMap::new();
        for &(spec, scenario) in &pending {
            let shape = match try_job_config(spec, scenario, opts) {
                Ok(cfg) => warm_digest(&cfg),
                Err(e) => {
                    self.record_failure(spec, scenario, opts, e.to_string());
                    continue;
                }
            };
            if !groups.contains_key(&shape) {
                order.push(shape);
            }
            groups.entry(shape).or_default().push((spec, scenario));
        }
        let chunks: Vec<Vec<SimJob>> = order
            .iter()
            .flat_map(|shape| {
                groups[shape]
                    .chunks(opts.batch)
                    .map(<[SimJob]>::to_vec)
                    .collect::<Vec<_>>()
            })
            .collect();
        par_map(&chunks, opts.jobs, |chunk| {
            let cfgs: Vec<SimConfig> = chunk
                .iter()
                .map(|&(spec, scenario)| job_config(spec, scenario, opts))
                .collect();
            let outcome = run_batch_fallible(&cfgs, None, opts.kernel, false);
            for (&(spec, scenario), result) in chunk.iter().zip(outcome.results) {
                match result {
                    Ok(result) => {
                        let slot = self.slot((scenario.to_string(), spec.name));
                        // A concurrent `get` may have raced us to the slot;
                        // its result is bitwise identical, so either filler
                        // is fine.
                        slot.get_or_init(|| {
                            self.runs.fetch_add(1, Ordering::Relaxed);
                            self.persist(job_digest(spec, scenario, opts), &result);
                            Arc::new(result.clone())
                        });
                    }
                    Err(error) => self.record_failure(spec, scenario, opts, error),
                }
            }
        });
    }

    /// Number of distinct `(workload, scenario)` keys cached so far.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn len(&self) -> usize {
        self.results.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total simulations actually executed (cache misses). Equal to [`len`]
    /// unless a simulation is still in flight.
    ///
    /// [`len`]: ResultCache::len
    pub fn simulations_run(&self) -> usize {
        self.runs.load(Ordering::Relaxed)
    }

    /// Every completed result as `(workload, scenario, result)`, sorted by
    /// key for deterministic iteration. Slots still being simulated by
    /// another thread are skipped.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn results(&self) -> Vec<(&'static str, String, Arc<SimResult>)> {
        let map = self.results.lock().expect("cache lock poisoned");
        let mut out: Vec<_> = map
            .iter()
            .filter_map(|((scenario, workload), slot)| {
                slot.get().map(|r| (*workload, scenario.clone(), r.clone()))
            })
            .collect();
        out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        out
    }
}

/// Stable identity of one simulation job: scenario, workload, and the run
/// shape (cores, instructions, the harness's fixed seed 42). Everything else
/// that could change the result (geometry, timings) is fixed by the scenario
/// constructors. Delegates to [`cell_key`], so a harness job and the campaign
/// daemon's cell for the same sweep point share one key — which is what lets
/// [`ResultCache`] and the service route through the same content-addressed
/// store.
pub fn job_digest(spec: &WorkloadSpec, scenario: Scenario, opts: &RunOpts) -> u64 {
    cell_key(
        spec.name,
        &scenario.to_string(),
        opts.cores,
        opts.instructions,
        42,
    )
}

/// Encodes a job-digest → result-bytes map as a [`KIND_RESULTS`] payload
/// (count, then sorted `(u64 key, length-prefixed bytes)` pairs).
pub fn encode_results(entries: &BTreeMap<u64, Vec<u8>>) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_usize(entries.len());
    for (key, bytes) in entries {
        w.put_u64(*key);
        w.put_bytes(bytes);
    }
    w.into_bytes()
}

/// Decodes a [`KIND_RESULTS`] payload written by [`encode_results`].
///
/// # Errors
///
/// Returns [`SnapError`] on truncation, duplicate keys, or trailing bytes.
pub fn decode_results(payload: &[u8]) -> Result<BTreeMap<u64, Vec<u8>>, SnapError> {
    let mut r = Reader::new(payload);
    let n = r.take_usize()?;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let key = r.take_u64()?;
        let bytes = r.take_bytes()?.to_vec();
        if map.insert(key, bytes).is_some() {
            return Err(SnapError::corrupt("duplicate job key in checkpoint"));
        }
    }
    if !r.is_empty() {
        return Err(SnapError::corrupt("trailing bytes after checkpoint map"));
    }
    Ok(map)
}

/// An on-disk checkpoint of completed simulations: a sealed [`KIND_RESULTS`]
/// container mapping [`job_digest`] keys to encoded `SimResult`s. Rewritten
/// atomically (tmp file + rename) after every completed simulation, so a
/// killed campaign loses at most the runs still in flight; on the next
/// attempt, [`ResultCache`] serves the finished ones from here without
/// re-simulating.
#[derive(Debug)]
pub struct CheckpointFile {
    path: PathBuf,
    entries: Mutex<BTreeMap<u64, Vec<u8>>>,
}

impl CheckpointFile {
    /// Opens `path`, reloading any entries a previous run left behind. A
    /// missing file starts empty; a corrupt one is ignored with a warning
    /// (it will be overwritten by the first completed simulation).
    pub fn load(path: PathBuf) -> Self {
        let entries = match std::fs::read(&path) {
            Ok(bytes) => match open(&bytes).and_then(|c| {
                if c.kind == KIND_RESULTS {
                    decode_results(&c.payload)
                } else {
                    Err(SnapError::corrupt("not a results checkpoint"))
                }
            }) {
                Ok(map) => map,
                Err(e) => {
                    eprintln!(
                        "warning: ignoring corrupt checkpoint {}: {e}",
                        path.display()
                    );
                    BTreeMap::new()
                }
            },
            Err(_) => BTreeMap::new(),
        };
        CheckpointFile {
            path,
            entries: Mutex::new(entries),
        }
    }

    /// The completed result stored under `key`, if any. An entry that fails
    /// to decode (e.g. written by an older build) is treated as absent.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn get(&self, key: u64) -> Option<SimResult> {
        let entries = self.entries.lock().expect("checkpoint lock poisoned");
        let bytes = entries.get(&key)?;
        SimResult::decode(&mut Reader::new(bytes)).ok()
    }

    /// Records a completed simulation and rewrites the file atomically.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn put(&self, key: u64, result: &SimResult) {
        let mut w = Writer::new();
        result.encode(&mut w);
        let mut entries = self.entries.lock().expect("checkpoint lock poisoned");
        entries.insert(key, w.into_bytes());
        let payload = encode_results(&entries);
        if let Err(e) = write_file(&self.path, KIND_RESULTS, &payload) {
            eprintln!(
                "warning: could not write checkpoint {}: {e}",
                self.path.display()
            );
        }
    }

    /// Number of completed results on record.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("checkpoint lock poisoned").len()
    }

    /// Whether no results are on record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Records a machine-readable manifest of one experiment binary's runs and
/// writes it to `results/<target>.json` (see `autorfm_telemetry::RunManifest`
/// for the schema).
///
/// Where the manifest goes:
///
/// * the `AUTORFM_MANIFEST` environment variable, when set (how `run_all`
///   directs each child's manifest next to its `.txt` report), else
/// * `results/<target>.json` when telemetry is enabled, else
/// * nowhere — [`Harness::finish`] is a no-op, so default runs leave the
///   filesystem untouched.
pub struct Harness {
    manifest: RunManifest,
    write_without_env: bool,
    started: Instant,
}

impl Harness {
    /// Starts recording for the current binary (`target` is the executable
    /// name) and snapshots `opts` into the manifest's config block.
    pub fn new(opts: &RunOpts) -> Self {
        let target = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "experiment".into());
        let mut manifest = RunManifest::new(&target);
        manifest.jobs = opts.jobs as u64;
        manifest.set_config("cores", Json::Num(f64::from(opts.cores)));
        manifest.set_config("instructions_per_core", Json::Num(opts.instructions as f64));
        manifest.set_config(
            "workloads",
            Json::Arr(
                opts.workloads
                    .iter()
                    .map(|w| Json::Str(w.name.to_string()))
                    .collect(),
            ),
        );
        manifest.set_config("seed", Json::Num(42.0));
        manifest.set_config("telemetry", Json::Bool(opts.telemetry));
        if let Some(ns) = opts.epoch_ns {
            manifest.set_config("epoch_ns", Json::Num(ns as f64));
        }
        Harness {
            manifest,
            write_without_env: opts.telemetry,
            started: Instant::now(),
        }
    }

    /// Records one simulation under `key` (convention: `workload/scenario`).
    /// Duplicate keys are kept once — the first recording wins.
    pub fn record(&mut self, key: &str, result: &SimResult) {
        if self.manifest.run(key).is_some() {
            return;
        }
        self.manifest.runs.push(RunEntry {
            key: key.to_string(),
            metrics: result.to_registry(),
            series: result.series.clone(),
        });
    }

    /// Records every completed simulation in `cache` (the usual one-liner for
    /// cache-driven experiments).
    pub fn record_cache(&mut self, cache: &ResultCache) {
        for (workload, scenario, result) in cache.results() {
            self.record(&format!("{workload}/{scenario}"), &result);
        }
    }

    /// Adds a free-form config entry (experiment-specific knobs).
    pub fn set_config(&mut self, key: &str, value: Json) {
        self.manifest.set_config(key, value);
    }

    /// Records a top-level scalar metric — for analytic experiments whose
    /// outputs aren't full simulation results.
    pub fn gauge(&mut self, name: &str, labels: Labels<'_>, value: f64) {
        self.manifest.metrics.gauge(name, labels, value);
    }

    /// Finalizes wall-clock and throughput figures and writes the manifest.
    /// Does nothing unless telemetry is enabled or `AUTORFM_MANIFEST` is set.
    pub fn finish(mut self) {
        let path = match std::env::var("AUTORFM_MANIFEST") {
            Ok(p) if !p.is_empty() => PathBuf::from(p),
            _ if self.write_without_env => {
                PathBuf::from("results").join(format!("{}.json", self.manifest.target))
            }
            _ => return,
        };
        self.manifest.wall_s = self.started.elapsed().as_secs_f64();
        self.manifest.sim_cycles = self
            .manifest
            .runs
            .iter()
            .filter_map(|r| r.metrics.get("elapsed_cycles", &[]))
            .map(|v| v.scalar() as u64)
            .sum();
        self.manifest.cycles_per_sec = if self.manifest.wall_s > 0.0 {
            self.manifest.sim_cycles as f64 / self.manifest.wall_s
        } else {
            0.0
        };
        let simulations = self.manifest.runs.len() as u64;
        self.manifest
            .metrics
            .counter("simulations", &[], simulations);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = self.manifest.save(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// The Zen-mapping no-mitigation baseline used for most normalizations.
pub const BASELINE_ZEN: Scenario = Scenario::Baseline {
    mapping: MappingKind::Zen,
};

/// The Rubix-mapping no-mitigation baseline (Appendix C normalization).
pub const BASELINE_RUBIX: Scenario = Scenario::Baseline {
    mapping: MappingKind::Rubix { key: 0xAB1E },
};

/// Formats a fraction as a signed percentage, e.g. `3.1%` or `-0.4%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Writes a table as CSV to `path`.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn write_csv(
    path: &std::path::Path,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    let quote = |cell: &str| {
        if cell.contains(',') || cell.contains('"') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    writeln!(
        f,
        "{}",
        headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            f,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

/// Prints a fixed-width table: a header row then data rows.
///
/// If the `AUTORFM_CSV_DIR` environment variable is set, the table is also
/// written as `<dir>/<binary-name>.csv` for downstream plotting.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    if let Ok(dir) = std::env::var("AUTORFM_CSV_DIR") {
        let name = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "table".into());
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| write_csv(&path, headers, rows))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Renders a horizontal ASCII bar chart (for the figure targets).
///
/// Bars are scaled to the largest absolute value; negative values (speedups)
/// render with `<` markers instead of `#`.
pub fn bar_chart(title: &str, entries: &[(String, f64)], fmt_value: impl Fn(f64) -> String) {
    if entries.is_empty() {
        return;
    }
    println!("\n{title}");
    let max = entries
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(8);
    const WIDTH: usize = 48;
    for (label, value) in entries {
        let filled = ((value.abs() / max) * WIDTH as f64).round() as usize;
        let ch = if *value < 0.0 { '<' } else { '#' };
        let bar: String = std::iter::repeat_n(ch, filled.min(WIDTH)).collect();
        println!("{label:<label_w$} |{bar:<WIDTH$}| {}", fmt_value(*value));
    }
}

/// Prints the standard experiment banner.
pub fn banner(title: &str, opts: &RunOpts) {
    println!("=== {title} ===");
    println!(
        "({} workloads, {} cores, {} instructions/core)\n",
        opts.workloads.len(),
        opts.cores,
        opts.instructions
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_cover_all_workloads() {
        let opts = RunOpts::default();
        assert_eq!(opts.workloads.len(), 21);
        assert_eq!(opts.cores, 8);
        assert!(opts.jobs >= 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.031), "3.1%");
        assert_eq!(pct(-0.004), "-0.4%");
    }

    #[test]
    fn csv_writer_quotes_and_formats() {
        let dir = std::env::temp_dir().join("autorfm-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["1,5".into(), "x\"y".into()],
                vec!["2".into(), "z".into()],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n\"1,5\",\"x\"\"y\"\n2,z\n");
    }

    #[test]
    fn cache_runs_once() {
        let spec = WorkloadSpec::by_name("wrf").unwrap();
        let opts = RunOpts {
            cores: 1,
            instructions: 2_000,
            workloads: vec![spec],
            jobs: 1,
            ..RunOpts::default()
        };
        let cache = ResultCache::new();
        let a = cache.get(spec, BASELINE_ZEN, &opts).perf();
        let b = cache.get(spec, BASELINE_ZEN, &opts).perf();
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.simulations_run(), 1);
    }

    #[test]
    fn batched_matrix_matches_unbatched() {
        let spec = WorkloadSpec::by_name("mcf").unwrap();
        let mut opts = RunOpts {
            cores: 2,
            instructions: 2_000,
            workloads: vec![spec],
            jobs: 1,
            ..RunOpts::default()
        };
        let matrix: Vec<SimJob> = vec![
            (spec, BASELINE_ZEN),
            (spec, Scenario::Rfm { th: 4 }),
            (spec, Scenario::AutoRfm { th: 4 }),
            (spec, BASELINE_ZEN), // duplicate: must dedup, not double-run
        ];
        let plain = run_matrix_cached(&matrix, &opts, &ResultCache::isolated());
        opts.batch = 8;
        let cache = ResultCache::isolated();
        let batched = run_matrix_cached(&matrix, &opts, &cache);
        assert_eq!(format!("{plain:?}"), format!("{batched:?}"));
        assert_eq!(cache.simulations_run(), 3);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        // Uneven per-item cost so completion order differs from input order.
        let out = par_map(&items, 8, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_serial_when_one_job() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(par_map::<u32, u32, _>(&[], 4, |&x| x), Vec::<u32>::new());
    }
}

//! # autorfm-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md for the index), plus Criterion micro-benchmarks (`benches/`).
//!
//! Every binary accepts the same flags:
//!
//! * `--quick` — 25K instructions/core (smoke-test fidelity),
//! * `--full` — 400K instructions/core (report fidelity),
//! * `--instructions N`, `--cores N`, `--workloads a,b,c` — manual control,
//! * `--jobs N` — worker threads for the simulation fan-out (see below),
//! * `--telemetry` — record epoch time series and full final-metric
//!   registries, and write a `results/<target>.json` manifest
//!   (env `AUTORFM_TELEMETRY=1`; see [`Harness`]),
//! * `--epoch-ns N` — telemetry sampling window (default: one tREFI),
//! * `--telemetry-csv DIR` — stream each run's epoch series as CSV.
//!
//! Defaults: 100K instructions/core, 8 cores, all 21 Table-V workloads.
//!
//! ## Parallel execution
//!
//! Each `(workload, scenario)` simulation is completely independent and
//! deterministic given its seed, so the harness fans the experiment matrix out
//! across threads:
//!
//! * [`run_matrix`] runs a slice of `(workload, scenario)` jobs on
//!   `opts.jobs` scoped worker threads (an atomic work index — no external
//!   thread-pool dependency) and returns results **in input order**,
//!   regardless of completion order.
//! * [`ResultCache`] is shared and thread-safe: each distinct
//!   `(workload, scenario)` key is simulated **exactly once** even when many
//!   scenarios request it concurrently (e.g. the Zen/Rubix baselines every
//!   figure normalizes against), via a `Mutex<HashMap>` of per-key
//!   `OnceLock` slots.
//! * [`par_map`] is the underlying generic fan-out for experiments that build
//!   custom [`SimConfig`]s (ablations, seed sweeps).
//!
//! `--jobs N` selects the worker count; the default is the machine's
//! available parallelism, and the `AUTORFM_JOBS` environment variable
//! overrides it (set `AUTORFM_JOBS=1` for strictly serial execution).
//! **Determinism guarantee:** simulations share no mutable state, so every
//! `SimResult` — and therefore every table and figure — is bitwise identical
//! for any `--jobs` value; only wall-clock changes. Expected speedup on an
//! N-thread host is close to N× for the big matrices (21 workloads × several
//! scenarios), bounded by the longest single simulation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use autorfm::experiments::Scenario;
use autorfm::telemetry::{Json, Labels, RunEntry, RunManifest};
use autorfm::{MappingKind, SimConfig, SimResult, System, TelemetryConfig};
use autorfm_sim_core::Cycle;
use autorfm_workloads::{WorkloadSpec, ALL_WORKLOADS};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Common run options parsed from the command line.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Cores per simulation.
    pub cores: u8,
    /// Instructions per core.
    pub instructions: u64,
    /// Workloads to simulate.
    pub workloads: Vec<&'static WorkloadSpec>,
    /// Worker threads for [`run_matrix`] / [`par_map`] (`--jobs N`,
    /// env `AUTORFM_JOBS`; default: available parallelism).
    pub jobs: usize,
    /// Record epoch time series and final-metric registries
    /// (`--telemetry`, env `AUTORFM_TELEMETRY=1`; default off — the default
    /// path is bitwise identical to a build without telemetry).
    pub telemetry: bool,
    /// Telemetry epoch length in nanoseconds (`--epoch-ns N`, implies
    /// `--telemetry`; default: one tREFI).
    pub epoch_ns: Option<u64>,
    /// Stream each run's epoch series as CSV into this directory
    /// (`--telemetry-csv DIR`, implies `--telemetry`).
    pub telemetry_csv: Option<PathBuf>,
}

/// The default worker-thread count: `AUTORFM_JOBS` if set and valid,
/// otherwise the machine's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    if let Some(n) = std::env::var("AUTORFM_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Whether `AUTORFM_TELEMETRY` asks for telemetry by default (`1`/`true`).
fn default_telemetry() -> bool {
    std::env::var("AUTORFM_TELEMETRY")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            cores: 8,
            instructions: 100_000,
            workloads: ALL_WORKLOADS.iter().collect(),
            jobs: default_jobs(),
            telemetry: default_telemetry(),
            epoch_ns: None,
            telemetry_csv: None,
        }
    }
}

impl RunOpts {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = RunOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.instructions = 25_000,
                "--full" => opts.instructions = 400_000,
                "--instructions" => {
                    opts.instructions = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--instructions needs a number");
                }
                "--cores" => {
                    opts.cores =
                        args.next().and_then(|v| v.parse().ok()).expect("--cores needs a number");
                }
                "--jobs" => {
                    opts.jobs = args
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .map(|n| n.max(1))
                        .expect("--jobs needs a positive number");
                }
                "--workloads" => {
                    let list = args.next().expect("--workloads needs a comma-separated list");
                    opts.workloads = list
                        .split(',')
                        .map(|n| {
                            WorkloadSpec::by_name(n)
                                .unwrap_or_else(|| panic!("unknown workload {n}"))
                        })
                        .collect();
                }
                "--telemetry" => opts.telemetry = true,
                "--epoch-ns" => {
                    opts.telemetry = true;
                    opts.epoch_ns = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .expect("--epoch-ns needs a positive number"),
                    );
                }
                "--telemetry-csv" => {
                    opts.telemetry = true;
                    opts.telemetry_csv =
                        Some(args.next().expect("--telemetry-csv needs a directory").into());
                }
                other => panic!(
                    "unknown flag {other}; expected --quick|--full|--instructions N|--cores N|--jobs N|--workloads a,b|--telemetry|--epoch-ns N|--telemetry-csv DIR"
                ),
            }
        }
        opts
    }
}

/// Builds the [`TelemetryConfig`] `opts` asks for (`None` when disabled).
/// `tag` names the streamed CSV file inside `opts.telemetry_csv`.
pub fn telemetry_config(opts: &RunOpts, tag: &str) -> Option<TelemetryConfig> {
    if !opts.telemetry {
        return None;
    }
    let csv_path = opts.telemetry_csv.as_ref().map(|dir| {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
        }
        dir.join(format!("{tag}.csv"))
    });
    Some(TelemetryConfig {
        epoch: opts.epoch_ns.map(Cycle::from_ns),
        max_samples: None,
        csv_path,
    })
}

/// Runs one workload under one scenario.
pub fn run(spec: &'static WorkloadSpec, scenario: Scenario, opts: &RunOpts) -> SimResult {
    let mut cfg = SimConfig::scenario(spec, scenario)
        .with_cores(opts.cores)
        .with_instructions(opts.instructions);
    cfg.telemetry = telemetry_config(opts, &format!("{}__{scenario}", spec.name));
    System::new(cfg).expect("valid scenario config").run()
}

/// One entry of an experiment matrix: a workload under a scenario.
pub type SimJob = (&'static WorkloadSpec, Scenario);

/// Applies `f` to every item on `jobs` scoped worker threads, returning
/// results in input order regardless of completion order.
///
/// Work is distributed through an atomic index, so uneven item costs balance
/// automatically. With `jobs <= 1` (or a single item) the map runs serially
/// on the calling thread — the `AUTORFM_JOBS=1` reproduction path.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Runs a `(workload, scenario)` matrix in parallel, returning results in
/// input order.
///
/// Duplicate jobs are simulated once (a fresh shared [`ResultCache`] dedups
/// them) and the duplicates receive clones. Use [`ResultCache::prefetch`]
/// instead when the cache should outlive the call.
pub fn run_matrix(jobs: &[SimJob], opts: &RunOpts) -> Vec<SimResult> {
    let cache = ResultCache::new();
    let results = par_map(jobs, opts.jobs, |&(spec, scenario)| {
        cache.get(spec, scenario, opts)
    });
    results.into_iter().map(|arc| (*arc).clone()).collect()
}

/// Cache key: (scenario display name, workload name).
type CacheKey = (String, &'static str);

/// One cached simulation: its `OnceLock` is filled exactly once by the first
/// requester; concurrent requesters block on it.
type CacheSlot = Arc<OnceLock<Arc<SimResult>>>;

/// A thread-safe cache of per-`(workload, scenario)` results so shared
/// scenarios (the normalization baselines above all) are simulated only once.
///
/// Concurrent `get`s for the same key rendezvous on a per-key
/// [`OnceLock`]: the first caller simulates, the rest block until the result
/// is ready — never re-running the simulation.
#[derive(Default)]
pub struct ResultCache {
    results: Mutex<HashMap<CacheKey, CacheSlot>>,
    runs: AtomicUsize,
}

impl ResultCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs (or returns the cached result of) `scenario` on `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a simulation panicked).
    pub fn get(
        &self,
        spec: &'static WorkloadSpec,
        scenario: Scenario,
        opts: &RunOpts,
    ) -> Arc<SimResult> {
        let slot = {
            let mut map = self.results.lock().expect("cache lock poisoned");
            map.entry((scenario.to_string(), spec.name))
                .or_default()
                .clone()
        };
        slot.get_or_init(|| {
            self.runs.fetch_add(1, Ordering::Relaxed);
            Arc::new(run(spec, scenario, opts))
        })
        .clone()
    }

    /// Simulates every job in the matrix on `opts.jobs` threads, warming the
    /// cache so later `get`s are instant hits. Duplicate keys (and keys
    /// already cached) are simulated only once.
    pub fn prefetch(&self, jobs: &[SimJob], opts: &RunOpts) {
        par_map(jobs, opts.jobs, |&(spec, scenario)| {
            self.get(spec, scenario, opts);
        });
    }

    /// Number of distinct `(workload, scenario)` keys cached so far.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn len(&self) -> usize {
        self.results.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total simulations actually executed (cache misses). Equal to [`len`]
    /// unless a simulation is still in flight.
    ///
    /// [`len`]: ResultCache::len
    pub fn simulations_run(&self) -> usize {
        self.runs.load(Ordering::Relaxed)
    }

    /// Every completed result as `(workload, scenario, result)`, sorted by
    /// key for deterministic iteration. Slots still being simulated by
    /// another thread are skipped.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn results(&self) -> Vec<(&'static str, String, Arc<SimResult>)> {
        let map = self.results.lock().expect("cache lock poisoned");
        let mut out: Vec<_> = map
            .iter()
            .filter_map(|((scenario, workload), slot)| {
                slot.get().map(|r| (*workload, scenario.clone(), r.clone()))
            })
            .collect();
        out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        out
    }
}

/// Records a machine-readable manifest of one experiment binary's runs and
/// writes it to `results/<target>.json` (see `autorfm_telemetry::RunManifest`
/// for the schema).
///
/// Where the manifest goes:
///
/// * the `AUTORFM_MANIFEST` environment variable, when set (how `run_all`
///   directs each child's manifest next to its `.txt` report), else
/// * `results/<target>.json` when telemetry is enabled, else
/// * nowhere — [`Harness::finish`] is a no-op, so default runs leave the
///   filesystem untouched.
pub struct Harness {
    manifest: RunManifest,
    write_without_env: bool,
    started: Instant,
}

impl Harness {
    /// Starts recording for the current binary (`target` is the executable
    /// name) and snapshots `opts` into the manifest's config block.
    pub fn new(opts: &RunOpts) -> Self {
        let target = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "experiment".into());
        let mut manifest = RunManifest::new(&target);
        manifest.jobs = opts.jobs as u64;
        manifest.set_config("cores", Json::Num(f64::from(opts.cores)));
        manifest.set_config("instructions_per_core", Json::Num(opts.instructions as f64));
        manifest.set_config(
            "workloads",
            Json::Arr(
                opts.workloads
                    .iter()
                    .map(|w| Json::Str(w.name.to_string()))
                    .collect(),
            ),
        );
        manifest.set_config("seed", Json::Num(42.0));
        manifest.set_config("telemetry", Json::Bool(opts.telemetry));
        if let Some(ns) = opts.epoch_ns {
            manifest.set_config("epoch_ns", Json::Num(ns as f64));
        }
        Harness {
            manifest,
            write_without_env: opts.telemetry,
            started: Instant::now(),
        }
    }

    /// Records one simulation under `key` (convention: `workload/scenario`).
    /// Duplicate keys are kept once — the first recording wins.
    pub fn record(&mut self, key: &str, result: &SimResult) {
        if self.manifest.run(key).is_some() {
            return;
        }
        self.manifest.runs.push(RunEntry {
            key: key.to_string(),
            metrics: result.to_registry(),
            series: result.series.clone(),
        });
    }

    /// Records every completed simulation in `cache` (the usual one-liner for
    /// cache-driven experiments).
    pub fn record_cache(&mut self, cache: &ResultCache) {
        for (workload, scenario, result) in cache.results() {
            self.record(&format!("{workload}/{scenario}"), &result);
        }
    }

    /// Adds a free-form config entry (experiment-specific knobs).
    pub fn set_config(&mut self, key: &str, value: Json) {
        self.manifest.set_config(key, value);
    }

    /// Records a top-level scalar metric — for analytic experiments whose
    /// outputs aren't full simulation results.
    pub fn gauge(&mut self, name: &str, labels: Labels<'_>, value: f64) {
        self.manifest.metrics.gauge(name, labels, value);
    }

    /// Finalizes wall-clock and throughput figures and writes the manifest.
    /// Does nothing unless telemetry is enabled or `AUTORFM_MANIFEST` is set.
    pub fn finish(mut self) {
        let path = match std::env::var("AUTORFM_MANIFEST") {
            Ok(p) if !p.is_empty() => PathBuf::from(p),
            _ if self.write_without_env => {
                PathBuf::from("results").join(format!("{}.json", self.manifest.target))
            }
            _ => return,
        };
        self.manifest.wall_s = self.started.elapsed().as_secs_f64();
        self.manifest.sim_cycles = self
            .manifest
            .runs
            .iter()
            .filter_map(|r| r.metrics.get("elapsed_cycles", &[]))
            .map(|v| v.scalar() as u64)
            .sum();
        self.manifest.cycles_per_sec = if self.manifest.wall_s > 0.0 {
            self.manifest.sim_cycles as f64 / self.manifest.wall_s
        } else {
            0.0
        };
        let simulations = self.manifest.runs.len() as u64;
        self.manifest
            .metrics
            .counter("simulations", &[], simulations);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = self.manifest.save(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// The Zen-mapping no-mitigation baseline used for most normalizations.
pub const BASELINE_ZEN: Scenario = Scenario::Baseline {
    mapping: MappingKind::Zen,
};

/// The Rubix-mapping no-mitigation baseline (Appendix C normalization).
pub const BASELINE_RUBIX: Scenario = Scenario::Baseline {
    mapping: MappingKind::Rubix { key: 0xAB1E },
};

/// Formats a fraction as a signed percentage, e.g. `3.1%` or `-0.4%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Writes a table as CSV to `path`.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn write_csv(
    path: &std::path::Path,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    let quote = |cell: &str| {
        if cell.contains(',') || cell.contains('"') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    writeln!(
        f,
        "{}",
        headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            f,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

/// Prints a fixed-width table: a header row then data rows.
///
/// If the `AUTORFM_CSV_DIR` environment variable is set, the table is also
/// written as `<dir>/<binary-name>.csv` for downstream plotting.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    if let Ok(dir) = std::env::var("AUTORFM_CSV_DIR") {
        let name = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "table".into());
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| write_csv(&path, headers, rows))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Renders a horizontal ASCII bar chart (for the figure targets).
///
/// Bars are scaled to the largest absolute value; negative values (speedups)
/// render with `<` markers instead of `#`.
pub fn bar_chart(title: &str, entries: &[(String, f64)], fmt_value: impl Fn(f64) -> String) {
    if entries.is_empty() {
        return;
    }
    println!("\n{title}");
    let max = entries
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(8);
    const WIDTH: usize = 48;
    for (label, value) in entries {
        let filled = ((value.abs() / max) * WIDTH as f64).round() as usize;
        let ch = if *value < 0.0 { '<' } else { '#' };
        let bar: String = std::iter::repeat_n(ch, filled.min(WIDTH)).collect();
        println!("{label:<label_w$} |{bar:<WIDTH$}| {}", fmt_value(*value));
    }
}

/// Prints the standard experiment banner.
pub fn banner(title: &str, opts: &RunOpts) {
    println!("=== {title} ===");
    println!(
        "({} workloads, {} cores, {} instructions/core)\n",
        opts.workloads.len(),
        opts.cores,
        opts.instructions
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_cover_all_workloads() {
        let opts = RunOpts::default();
        assert_eq!(opts.workloads.len(), 21);
        assert_eq!(opts.cores, 8);
        assert!(opts.jobs >= 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.031), "3.1%");
        assert_eq!(pct(-0.004), "-0.4%");
    }

    #[test]
    fn csv_writer_quotes_and_formats() {
        let dir = std::env::temp_dir().join("autorfm-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["1,5".into(), "x\"y".into()],
                vec!["2".into(), "z".into()],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n\"1,5\",\"x\"\"y\"\n2,z\n");
    }

    #[test]
    fn cache_runs_once() {
        let spec = WorkloadSpec::by_name("wrf").unwrap();
        let opts = RunOpts {
            cores: 1,
            instructions: 2_000,
            workloads: vec![spec],
            jobs: 1,
            telemetry: false,
            epoch_ns: None,
            telemetry_csv: None,
        };
        let cache = ResultCache::new();
        let a = cache.get(spec, BASELINE_ZEN, &opts).perf();
        let b = cache.get(spec, BASELINE_ZEN, &opts).perf();
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.simulations_run(), 1);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        // Uneven per-item cost so completion order differs from input order.
        let out = par_map(&items, 8, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_serial_when_one_job() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(par_map::<u32, u32, _>(&[], 4, |&x| x), Vec::<u32>::new());
    }
}

//! # autorfm-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md for the index), plus Criterion micro-benchmarks (`benches/`).
//!
//! Every binary accepts the same flags:
//!
//! * `--quick` — 25K instructions/core (smoke-test fidelity),
//! * `--full` — 400K instructions/core (report fidelity),
//! * `--instructions N`, `--cores N`, `--workloads a,b,c` — manual control.
//!
//! Defaults: 100K instructions/core, 8 cores, all 21 Table-V workloads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use autorfm::experiments::Scenario;
use autorfm::{MappingKind, SimConfig, SimResult, System};
use autorfm_workloads::{WorkloadSpec, ALL_WORKLOADS};
use std::collections::HashMap;

/// Common run options parsed from the command line.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Cores per simulation.
    pub cores: u8,
    /// Instructions per core.
    pub instructions: u64,
    /// Workloads to simulate.
    pub workloads: Vec<&'static WorkloadSpec>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            cores: 8,
            instructions: 100_000,
            workloads: ALL_WORKLOADS.iter().collect(),
        }
    }
}

impl RunOpts {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = RunOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.instructions = 25_000,
                "--full" => opts.instructions = 400_000,
                "--instructions" => {
                    opts.instructions = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--instructions needs a number");
                }
                "--cores" => {
                    opts.cores =
                        args.next().and_then(|v| v.parse().ok()).expect("--cores needs a number");
                }
                "--workloads" => {
                    let list = args.next().expect("--workloads needs a comma-separated list");
                    opts.workloads = list
                        .split(',')
                        .map(|n| {
                            WorkloadSpec::by_name(n)
                                .unwrap_or_else(|| panic!("unknown workload {n}"))
                        })
                        .collect();
                }
                other => panic!(
                    "unknown flag {other}; expected --quick|--full|--instructions N|--cores N|--workloads a,b"
                ),
            }
        }
        opts
    }
}

/// Runs one workload under one scenario.
pub fn run(spec: &'static WorkloadSpec, scenario: Scenario, opts: &RunOpts) -> SimResult {
    let cfg = SimConfig::scenario(spec, scenario)
        .with_cores(opts.cores)
        .with_instructions(opts.instructions);
    System::new(cfg).expect("valid scenario config").run()
}

/// A cache of per-workload results so baselines are simulated only once.
#[derive(Default)]
pub struct ResultCache {
    results: HashMap<(String, &'static str), SimResult>,
}

impl ResultCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs (or returns the cached result of) `scenario` on `spec`.
    pub fn get(
        &mut self,
        spec: &'static WorkloadSpec,
        scenario: Scenario,
        opts: &RunOpts,
    ) -> &SimResult {
        self.results
            .entry((scenario.to_string(), spec.name))
            .or_insert_with(|| run(spec, scenario, opts))
    }
}

/// The Zen-mapping no-mitigation baseline used for most normalizations.
pub const BASELINE_ZEN: Scenario = Scenario::Baseline {
    mapping: MappingKind::Zen,
};

/// The Rubix-mapping no-mitigation baseline (Appendix C normalization).
pub const BASELINE_RUBIX: Scenario = Scenario::Baseline {
    mapping: MappingKind::Rubix { key: 0xAB1E },
};

/// Formats a fraction as a signed percentage, e.g. `3.1%` or `-0.4%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Writes a table as CSV to `path`.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn write_csv(
    path: &std::path::Path,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    let quote = |cell: &str| {
        if cell.contains(',') || cell.contains('"') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    writeln!(
        f,
        "{}",
        headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            f,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

/// Prints a fixed-width table: a header row then data rows.
///
/// If the `AUTORFM_CSV_DIR` environment variable is set, the table is also
/// written as `<dir>/<binary-name>.csv` for downstream plotting.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    if let Ok(dir) = std::env::var("AUTORFM_CSV_DIR") {
        let name = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "table".into());
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| write_csv(&path, headers, rows))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Renders a horizontal ASCII bar chart (for the figure targets).
///
/// Bars are scaled to the largest absolute value; negative values (speedups)
/// render with `<` markers instead of `#`.
pub fn bar_chart(title: &str, entries: &[(String, f64)], fmt_value: impl Fn(f64) -> String) {
    if entries.is_empty() {
        return;
    }
    println!("\n{title}");
    let max = entries
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(8);
    const WIDTH: usize = 48;
    for (label, value) in entries {
        let filled = ((value.abs() / max) * WIDTH as f64).round() as usize;
        let ch = if *value < 0.0 { '<' } else { '#' };
        let bar: String = std::iter::repeat_n(ch, filled.min(WIDTH)).collect();
        println!("{label:<label_w$} |{bar:<WIDTH$}| {}", fmt_value(*value));
    }
}

/// Prints the standard experiment banner.
pub fn banner(title: &str, opts: &RunOpts) {
    println!("=== {title} ===");
    println!(
        "({} workloads, {} cores, {} instructions/core)\n",
        opts.workloads.len(),
        opts.cores,
        opts.instructions
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_cover_all_workloads() {
        let opts = RunOpts::default();
        assert_eq!(opts.workloads.len(), 21);
        assert_eq!(opts.cores, 8);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.031), "3.1%");
        assert_eq!(pct(-0.004), "-0.4%");
    }

    #[test]
    fn csv_writer_quotes_and_formats() {
        let dir = std::env::temp_dir().join("autorfm-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["1,5".into(), "x\"y".into()],
                vec!["2".into(), "z".into()],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n\"1,5\",\"x\"\"y\"\n2,z\n");
    }

    #[test]
    fn cache_runs_once() {
        let spec = WorkloadSpec::by_name("wrf").unwrap();
        let opts = RunOpts {
            cores: 1,
            instructions: 2_000,
            workloads: vec![spec],
        };
        let mut cache = ResultCache::new();
        let a = cache.get(spec, BASELINE_ZEN, &opts).perf();
        let b = cache.get(spec, BASELINE_ZEN, &opts).perf();
        assert_eq!(a, b);
        assert_eq!(cache.results.len(), 1);
    }
}

//! Trace memoization: compute a workload's op stream once, replay it many
//! times.
//!
//! A generated instruction stream is a pure function of `(spec, core, seed,
//! number of ops drawn)` — it never observes simulated time or machine state —
//! so every simulation lane of a batched sweep that shares those parameters
//! replays the *same* op sequence. A [`TraceMemo`] runs one master
//! [`WorkloadGen`] and records its output as run-length-encoded chunks
//! (`Op::NonMem` runs collapse to a count); any number of [`MemoCursor`]s then
//! stream the recorded ops read-only, touching the shared state only at chunk
//! boundaries. Replay through a cursor is op-for-op identical to driving a
//! private generator, including snapshot state: [`MemoCursor::materialize`]
//! reconstructs the exact generator a direct run would hold at the cursor's
//! position.

use crate::generator::WorkloadGen;
use crate::spec::WorkloadSpec;
use autorfm_cpu::{InstructionStream, Op};
use std::sync::{Arc, Mutex};

/// Memory operations recorded per chunk. Large enough that cursors rarely
/// take the memo lock (one lock per ~chunk of ops), small enough that the
/// master stays barely ahead of the fastest lane.
const CHUNK_ENTRIES: usize = 1024;

/// One run-length-encoded slab of the op stream: `entries[k] = (gap, op)`
/// means "`gap` `Op::NonMem` instructions, then `op`". `start_state` is the
/// master generator exactly at the chunk's first op, kept so a cursor can
/// materialize a bit-exact generator mid-chunk for snapshots.
#[derive(Debug)]
struct MemoChunk {
    start_state: WorkloadGen,
    entries: Vec<(u32, Op)>,
}

#[derive(Debug)]
struct MemoInner {
    /// The master generator, positioned at the end of the last chunk.
    master: WorkloadGen,
    chunks: Vec<Arc<MemoChunk>>,
}

/// A shared, lazily-extended recording of one `(spec, core, seed)` op stream.
///
/// Shared across threads behind an [`Arc`]; the interior mutex is taken only
/// when a cursor crosses a chunk boundary (and the producing cursor extends
/// the recording for everyone behind it).
#[derive(Debug)]
pub struct TraceMemo {
    inner: Mutex<MemoInner>,
}

impl TraceMemo {
    /// Records the stream of `WorkloadGen::new(spec, core, seed)` after
    /// `warmup_mem_ops` warm-up memory operations have been drawn (matching
    /// the simulator's cache warm-up fast-forward, which consumes the
    /// generator via `next_mem`).
    pub fn new(spec: &'static WorkloadSpec, core: u8, seed: u64, warmup_mem_ops: u64) -> Self {
        let mut master = WorkloadGen::new(spec, core, seed);
        for _ in 0..warmup_mem_ops {
            master.next_mem();
        }
        TraceMemo {
            inner: Mutex::new(MemoInner {
                master,
                chunks: Vec::new(),
            }),
        }
    }

    /// The chunk at `idx`, recording it (and any predecessors) on demand.
    fn chunk(&self, idx: usize) -> Arc<MemoChunk> {
        let mut inner = self.inner.lock().expect("memo poisoned");
        while inner.chunks.len() <= idx {
            let start_state = inner.master.clone();
            let mut entries = Vec::with_capacity(CHUNK_ENTRIES);
            for _ in 0..CHUNK_ENTRIES {
                let mut gap = 0u32;
                let op = loop {
                    match inner.master.next_op() {
                        Op::NonMem => gap += 1,
                        op => break op,
                    }
                };
                entries.push((gap, op));
            }
            inner.chunks.push(Arc::new(MemoChunk {
                start_state,
                entries,
            }));
        }
        Arc::clone(&inner.chunks[idx])
    }
}

/// A read-only replay position within a [`TraceMemo`].
///
/// Implements the same op-at-a-time pull as a private [`WorkloadGen`]; all
/// cursors over one memo see the identical sequence.
#[derive(Debug, Clone)]
pub struct MemoCursor {
    memo: Arc<TraceMemo>,
    /// The chunk currently being replayed (`None` before the first pull and
    /// after exhausting a chunk).
    chunk: Option<Arc<MemoChunk>>,
    chunk_idx: usize,
    /// Entries of the current chunk fully replayed.
    entries_done: usize,
    /// `Op::NonMem`s already emitted from the current entry's gap.
    nonmems_emitted: u32,
}

impl MemoCursor {
    /// A cursor at the start of the recording.
    pub fn new(memo: Arc<TraceMemo>) -> Self {
        MemoCursor {
            memo,
            chunk: None,
            chunk_idx: 0,
            entries_done: 0,
            nonmems_emitted: 0,
        }
    }

    /// The next op of the recorded stream.
    pub fn next_op(&mut self) -> Op {
        let chunk = match &self.chunk {
            Some(c) => c,
            None => {
                self.chunk = Some(self.memo.chunk(self.chunk_idx));
                self.chunk.as_ref().expect("just set")
            }
        };
        let (gap, op) = chunk.entries[self.entries_done];
        if self.nonmems_emitted < gap {
            self.nonmems_emitted += 1;
            return Op::NonMem;
        }
        self.nonmems_emitted = 0;
        self.entries_done += 1;
        if self.entries_done == chunk.entries.len() {
            self.chunk = None;
            self.chunk_idx += 1;
            self.entries_done = 0;
        }
        op
    }

    /// Reconstructs the [`WorkloadGen`] a direct (un-memoized) run would hold
    /// at this cursor's position: the current chunk's start state advanced by
    /// exactly the ops already replayed. Used when snapshotting a lane, so
    /// memoized and direct runs serialize identical stream state.
    pub fn materialize(&self) -> WorkloadGen {
        let chunk = match &self.chunk {
            Some(c) => Arc::clone(c),
            None => self.memo.chunk(self.chunk_idx),
        };
        let mut g = chunk.start_state.clone();
        let replayed: u64 = chunk.entries[..self.entries_done]
            .iter()
            .map(|&(gap, _)| gap as u64 + 1)
            .sum::<u64>()
            + self.nonmems_emitted as u64;
        for _ in 0..replayed {
            g.next_op();
        }
        g
    }
}

impl InstructionStream for MemoCursor {
    fn next_op(&mut self) -> Op {
        MemoCursor::next_op(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autorfm_snapshot::Writer;

    fn direct(spec: &'static WorkloadSpec, seed: u64, warmup: u64) -> WorkloadGen {
        let mut g = WorkloadGen::new(spec, 0, seed);
        for _ in 0..warmup {
            g.next_mem();
        }
        g
    }

    #[test]
    fn cursor_replays_the_direct_stream_exactly() {
        let spec = WorkloadSpec::by_name("mcf").unwrap();
        let memo = Arc::new(TraceMemo::new(spec, 0, 42, 100));
        let mut cursor = MemoCursor::new(Arc::clone(&memo));
        let mut gen = direct(spec, 42, 100);
        // Several chunk crossings (mcf ~23 mem-PKI -> ~44k ops per chunk).
        for i in 0..200_000u32 {
            assert_eq!(cursor.next_op(), gen.next_op(), "op {i} diverged");
        }
    }

    #[test]
    fn concurrent_cursors_see_one_sequence() {
        let spec = WorkloadSpec::by_name("copy").unwrap();
        let memo = Arc::new(TraceMemo::new(spec, 0, 7, 10));
        let mut a = MemoCursor::new(Arc::clone(&memo));
        let mut b = MemoCursor::new(Arc::clone(&memo));
        // b lags a by a half-chunk; both must still agree with a direct run.
        let mut gen = direct(spec, 7, 10);
        for _ in 0..50_000 {
            let expect = gen.next_op();
            assert_eq!(a.next_op(), expect);
        }
        let mut gen = direct(spec, 7, 10);
        for _ in 0..50_000 {
            assert_eq!(b.next_op(), gen.next_op());
        }
    }

    #[test]
    fn materialize_matches_direct_generator_state() {
        let spec = WorkloadSpec::by_name("wrf").unwrap();
        let memo = Arc::new(TraceMemo::new(spec, 0, 11, 50));
        let mut cursor = MemoCursor::new(Arc::clone(&memo));
        let mut gen = direct(spec, 11, 50);
        for drawn in [0usize, 1, 777, 100_000] {
            for _ in 0..drawn {
                cursor.next_op();
                gen.next_op();
            }
            let mat = cursor.materialize();
            let (mut a, mut b) = (Writer::new(), Writer::new());
            mat.save_state(&mut a);
            gen.save_state(&mut b);
            assert_eq!(a.bytes(), b.bytes(), "state diverged after {drawn} ops");
        }
    }
}

//! Workload specifications: one per Table-V benchmark.

use core::fmt;

/// The benchmark suite a workload belongs to (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2017 (memory-intensive subset, ≥1 ACT-PKI).
    Spec2k17,
    /// GAP graph-analytics benchmarks.
    Gap,
    /// McCalpin STREAM kernels.
    Stream,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Spec2k17 => "SPEC2K17",
            Suite::Gap => "GAP",
            Suite::Stream => "Stream",
        };
        f.write_str(s)
    }
}

/// The memory access pattern class of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// `streams` concurrent sequential streams over the footprint
    /// (scientific/stencil codes, STREAM kernels).
    Streaming {
        /// Number of concurrent sequential streams.
        streams: u32,
    },
    /// Uniform random accesses over the footprint (mcf/omnetpp-like).
    /// `dependent_fraction` of loads serialize dispatch (pointer chasing).
    Random {
        /// Fraction of loads that are dependent (serialize dispatch).
        dependent_fraction: f64,
    },
    /// Graph-analytics mix: sequential offset-array scans interleaved with
    /// random neighbor-array accesses.
    GraphMixed {
        /// Fraction of memory accesses that are random (neighbor lookups).
        random_fraction: f64,
        /// Number of concurrent sequential streams (CSR offset scans).
        streams: u32,
    },
}

/// A synthetic workload specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as in Table V.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Access pattern class.
    pub pattern: Pattern,
    /// LLC-level memory operations per 1000 instructions.
    pub mem_pki: f64,
    /// Fraction of memory operations that are stores.
    pub write_fraction: f64,
    /// Per-core footprint in cache lines (should exceed the LLC share for
    /// memory-intensive workloads).
    pub footprint_lines: u64,
    /// ACT-PKI the paper reports (Table V) — for paper-vs-measured reporting.
    pub paper_act_pki: f64,
    /// ACT-per-tREFI per bank the paper reports (Table V).
    pub paper_act_per_trefi: f64,
}

impl WorkloadSpec {
    /// Looks up a workload by its Table-V name (case-insensitive).
    pub fn by_name(name: &str) -> Option<&'static WorkloadSpec> {
        ALL_WORKLOADS
            .iter()
            .find(|w| w.name.eq_ignore_ascii_case(name))
    }

    /// All workloads of one suite.
    pub fn suite_workloads(suite: Suite) -> impl Iterator<Item = &'static WorkloadSpec> {
        ALL_WORKLOADS.iter().filter(move |w| w.suite == suite)
    }
}

/// 64 MB of lines (per core) — comfortably exceeds the 1 MB per-core LLC share.
const BIG: u64 = (64 << 20) / 64;
/// 16 MB footprint for moderate workloads.
const MID: u64 = (16 << 20) / 64;
/// 4 MB footprint for cache-friendlier workloads (some LLC hits).
const SMALL: u64 = (4 << 20) / 64;

/// The 21 workloads of Table V.
///
/// `mem_pki` values are calibrated so the simulated ACT-PKI lands near the
/// paper's column under the baseline Zen mapping: streaming patterns keep some
/// row-buffer hits (2 lines/row) and add writeback ACTs, random patterns miss
/// almost every access.
pub const ALL_WORKLOADS: &[WorkloadSpec] = &[
    // ---- SPEC CPU 2017 ----
    WorkloadSpec {
        name: "bwaves",
        suite: Suite::Spec2k17,
        pattern: Pattern::Streaming { streams: 8 },
        mem_pki: 42.0,
        write_fraction: 0.25,
        footprint_lines: BIG,
        paper_act_pki: 35.7,
        paper_act_per_trefi: 27.7,
    },
    WorkloadSpec {
        name: "fotonik3d",
        suite: Suite::Spec2k17,
        pattern: Pattern::Streaming { streams: 6 },
        mem_pki: 31.0,
        write_fraction: 0.3,
        footprint_lines: BIG,
        paper_act_pki: 26.7,
        paper_act_per_trefi: 33.0,
    },
    WorkloadSpec {
        name: "lbm",
        suite: Suite::Spec2k17,
        pattern: Pattern::Streaming { streams: 10 },
        mem_pki: 30.0,
        write_fraction: 0.45,
        footprint_lines: BIG,
        paper_act_pki: 25.5,
        paper_act_per_trefi: 34.4,
    },
    WorkloadSpec {
        name: "parest",
        suite: Suite::Spec2k17,
        pattern: Pattern::GraphMixed {
            random_fraction: 0.3,
            streams: 4,
        },
        mem_pki: 23.0,
        write_fraction: 0.2,
        footprint_lines: MID,
        paper_act_pki: 20.0,
        paper_act_per_trefi: 28.4,
    },
    WorkloadSpec {
        name: "mcf",
        suite: Suite::Spec2k17,
        pattern: Pattern::Random {
            dependent_fraction: 0.25,
        },
        mem_pki: 23.0,
        write_fraction: 0.15,
        footprint_lines: BIG,
        paper_act_pki: 22.0,
        paper_act_per_trefi: 31.4,
    },
    WorkloadSpec {
        name: "roms",
        suite: Suite::Spec2k17,
        pattern: Pattern::Streaming { streams: 4 },
        mem_pki: 16.0,
        write_fraction: 0.3,
        footprint_lines: BIG,
        paper_act_pki: 13.4,
        paper_act_per_trefi: 26.7,
    },
    WorkloadSpec {
        name: "omnetpp",
        suite: Suite::Spec2k17,
        pattern: Pattern::Random {
            dependent_fraction: 0.35,
        },
        mem_pki: 10.0,
        write_fraction: 0.2,
        footprint_lines: MID,
        paper_act_pki: 9.5,
        paper_act_per_trefi: 29.0,
    },
    WorkloadSpec {
        name: "xz",
        suite: Suite::Spec2k17,
        pattern: Pattern::Random {
            dependent_fraction: 0.2,
        },
        mem_pki: 6.2,
        write_fraction: 0.25,
        footprint_lines: MID,
        paper_act_pki: 5.9,
        paper_act_per_trefi: 25.0,
    },
    WorkloadSpec {
        name: "cam4",
        suite: Suite::Spec2k17,
        pattern: Pattern::GraphMixed {
            random_fraction: 0.2,
            streams: 3,
        },
        mem_pki: 5.0,
        write_fraction: 0.25,
        footprint_lines: MID,
        paper_act_pki: 4.2,
        paper_act_per_trefi: 18.2,
    },
    WorkloadSpec {
        name: "blender",
        suite: Suite::Spec2k17,
        pattern: Pattern::GraphMixed {
            random_fraction: 0.3,
            streams: 2,
        },
        mem_pki: 1.7,
        write_fraction: 0.2,
        footprint_lines: SMALL,
        paper_act_pki: 1.4,
        paper_act_per_trefi: 9.7,
    },
    WorkloadSpec {
        name: "wrf",
        suite: Suite::Spec2k17,
        pattern: Pattern::Streaming { streams: 2 },
        mem_pki: 1.2,
        write_fraction: 0.3,
        footprint_lines: SMALL,
        paper_act_pki: 1.0,
        paper_act_per_trefi: 6.6,
    },
    // ---- GAP ----
    WorkloadSpec {
        name: "ConnComp",
        suite: Suite::Gap,
        pattern: Pattern::GraphMixed {
            random_fraction: 0.7,
            streams: 4,
        },
        mem_pki: 85.0,
        write_fraction: 0.15,
        footprint_lines: BIG,
        paper_act_pki: 80.7,
        paper_act_per_trefi: 35.0,
    },
    WorkloadSpec {
        name: "PageRank",
        suite: Suite::Gap,
        pattern: Pattern::GraphMixed {
            random_fraction: 0.5,
            streams: 6,
        },
        mem_pki: 45.0,
        write_fraction: 0.2,
        footprint_lines: BIG,
        paper_act_pki: 40.9,
        paper_act_per_trefi: 31.5,
    },
    WorkloadSpec {
        name: "TriCount",
        suite: Suite::Gap,
        pattern: Pattern::GraphMixed {
            random_fraction: 0.6,
            streams: 4,
        },
        mem_pki: 38.0,
        write_fraction: 0.05,
        footprint_lines: BIG,
        paper_act_pki: 35.2,
        paper_act_per_trefi: 26.1,
    },
    WorkloadSpec {
        name: "BFS",
        suite: Suite::Gap,
        pattern: Pattern::GraphMixed {
            random_fraction: 0.6,
            streams: 3,
        },
        mem_pki: 34.0,
        write_fraction: 0.15,
        footprint_lines: BIG,
        paper_act_pki: 31.1,
        paper_act_per_trefi: 30.4,
    },
    WorkloadSpec {
        name: "BC",
        suite: Suite::Gap,
        pattern: Pattern::GraphMixed {
            random_fraction: 0.5,
            streams: 3,
        },
        mem_pki: 18.0,
        write_fraction: 0.2,
        footprint_lines: BIG,
        paper_act_pki: 16.0,
        paper_act_per_trefi: 26.3,
    },
    WorkloadSpec {
        name: "SSSPath",
        suite: Suite::Gap,
        pattern: Pattern::GraphMixed {
            random_fraction: 0.4,
            streams: 2,
        },
        mem_pki: 10.0,
        write_fraction: 0.2,
        footprint_lines: MID,
        paper_act_pki: 9.0,
        paper_act_per_trefi: 23.9,
    },
    // ---- STREAM ----
    WorkloadSpec {
        name: "add",
        suite: Suite::Stream,
        pattern: Pattern::Streaming { streams: 3 }, // a[i] = b[i] + c[i]
        mem_pki: 14.0,
        write_fraction: 0.33,
        footprint_lines: BIG,
        paper_act_pki: 12.1,
        paper_act_per_trefi: 29.2,
    },
    WorkloadSpec {
        name: "triad",
        suite: Suite::Stream,
        pattern: Pattern::Streaming { streams: 3 }, // a[i] = b[i] + s*c[i]
        mem_pki: 12.0,
        write_fraction: 0.33,
        footprint_lines: BIG,
        paper_act_pki: 10.3,
        paper_act_per_trefi: 28.6,
    },
    WorkloadSpec {
        name: "copy",
        suite: Suite::Stream,
        pattern: Pattern::Streaming { streams: 2 }, // a[i] = b[i]
        mem_pki: 11.0,
        write_fraction: 0.5,
        footprint_lines: BIG,
        paper_act_pki: 9.3,
        paper_act_per_trefi: 27.8,
    },
    WorkloadSpec {
        name: "scale",
        suite: Suite::Stream,
        pattern: Pattern::Streaming { streams: 2 }, // a[i] = s*b[i]
        mem_pki: 9.0,
        write_fraction: 0.5,
        footprint_lines: BIG,
        paper_act_pki: 7.6,
        paper_act_per_trefi: 27.1,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_one_workloads() {
        assert_eq!(ALL_WORKLOADS.len(), 21);
        assert_eq!(WorkloadSpec::suite_workloads(Suite::Spec2k17).count(), 11);
        assert_eq!(WorkloadSpec::suite_workloads(Suite::Gap).count(), 6);
        assert_eq!(WorkloadSpec::suite_workloads(Suite::Stream).count(), 4);
    }

    #[test]
    fn names_unique_and_lookup_works() {
        let mut names: Vec<_> = ALL_WORKLOADS.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
        assert!(WorkloadSpec::by_name("BWAVES").is_some());
        assert!(WorkloadSpec::by_name("nonexistent").is_none());
    }

    #[test]
    fn paper_values_recorded() {
        let bwaves = WorkloadSpec::by_name("bwaves").unwrap();
        assert_eq!(bwaves.paper_act_pki, 35.7);
        assert_eq!(bwaves.paper_act_per_trefi, 27.7);
        let cc = WorkloadSpec::by_name("ConnComp").unwrap();
        assert_eq!(cc.paper_act_pki, 80.7);
    }

    #[test]
    fn sane_parameters() {
        for w in ALL_WORKLOADS {
            assert!(w.mem_pki > 0.0, "{}", w.name);
            assert!((0.0..=1.0).contains(&w.write_fraction), "{}", w.name);
            assert!(w.footprint_lines > 1024, "{}", w.name);
            assert!(
                w.mem_pki >= w.paper_act_pki,
                "{}: mem_pki must exceed ACT-PKI",
                w.name
            );
        }
    }

    #[test]
    fn suite_display() {
        assert_eq!(Suite::Spec2k17.to_string(), "SPEC2K17");
        assert_eq!(Suite::Gap.to_string(), "GAP");
        assert_eq!(Suite::Stream.to_string(), "Stream");
    }
}

//! The synthetic instruction-stream generator.

use crate::spec::{Pattern, WorkloadSpec};
use autorfm_cpu::{InstructionStream, Op};
use autorfm_sim_core::{DetRng, LineAddr};
use autorfm_snapshot::{Reader, SnapError, Snapshot, Writer};

/// Generates an infinite instruction stream matching a [`WorkloadSpec`].
///
/// Each core runs its own generator over a disjoint address region (rate mode:
/// 8 copies of the same benchmark, Section III). Memory operations are spaced
/// `1000 / mem_pki` instructions apart on average, with ±50% uniform jitter so
/// banks don't receive lock-step bursts.
///
/// # Examples
///
/// ```
/// use autorfm_workloads::{WorkloadGen, WorkloadSpec};
/// use autorfm_cpu::{InstructionStream, Op};
///
/// let spec = WorkloadSpec::by_name("mcf").unwrap();
/// let mut gen = WorkloadGen::new(spec, 0, 1);
/// let mem_ops = (0..10_000)
///     .filter(|_| !matches!(gen.next_op(), Op::NonMem))
///     .count();
/// // mcf: ~23 memory ops per kilo-instruction.
/// assert!((150..=320).contains(&mem_ops), "{mem_ops}");
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    spec: &'static WorkloadSpec,
    rng: DetRng,
    /// First line of this core's region.
    region_base: u64,
    /// Sequential stream cursors (offsets within the region).
    cursors: Vec<u64>,
    next_stream: usize,
    /// Instructions remaining until the next memory operation.
    gap_left: u32,
    /// Average instruction gap between memory operations (x2 for jitter).
    mean_gap: u32,
    /// A queued row-sibling access (see [`Self::sibling_probability`]).
    pending_sibling: Option<u64>,
}

impl WorkloadGen {
    /// Creates a generator for `core` with the given RNG seed.
    pub fn new(spec: &'static WorkloadSpec, core: u8, seed: u64) -> Self {
        let mut rng = DetRng::seeded(seed ^ ((core as u64) << 32));
        let region_base = core as u64 * spec.footprint_lines;
        let streams = match spec.pattern {
            Pattern::Streaming { streams } => streams,
            Pattern::GraphMixed { streams, .. } => streams,
            Pattern::Random { .. } => 1,
        }
        .max(1);
        // Stagger stream cursors across the footprint.
        let cursors = (0..streams as u64)
            .map(|s| {
                (s * spec.footprint_lines / streams as u64
                    + rng.gen_range(spec.footprint_lines / 8 + 1))
                    % spec.footprint_lines
            })
            .collect();
        let mean_gap = (1000.0 / spec.mem_pki).round().max(1.0) as u32;
        let gap_left = rng.gen_range(mean_gap as u64 * 2 + 1) as u32;
        WorkloadGen {
            spec,
            rng,
            region_base,
            cursors,
            next_stream: 0,
            gap_left,
            mean_gap,
            pending_sibling: None,
        }
    }

    /// Probability that a sequential access is followed shortly by its 4 KB
    /// page *row sibling* (the line 32 lines away, which the Zen mapping
    /// places in the same DRAM row). Real programs exhibit this page-level
    /// temporal adjacency; it is what gives Zen its row-buffer hits and makes
    /// Rubix pay extra activations (Sections III, IV-F).
    pub fn sibling_probability(&self) -> f64 {
        match self.spec.pattern {
            Pattern::Streaming { .. } => 0.40,
            Pattern::GraphMixed { .. } => 0.20,
            Pattern::Random { .. } => 0.10,
        }
    }

    /// The workload this generator follows.
    pub fn spec(&self) -> &'static WorkloadSpec {
        self.spec
    }

    /// Serializes the generator's mutable state (RNG, cursors, gap, queued
    /// sibling). The spec and per-core region are configuration and are
    /// rebuilt at restore via [`WorkloadGen::new`].
    pub fn save_state(&self, w: &mut Writer) {
        self.rng.encode(w);
        self.cursors.encode(w);
        w.put_usize(self.next_stream);
        w.put_u32(self.gap_left);
        self.pending_sibling.encode(w);
    }

    /// Restores the state saved by [`WorkloadGen::save_state`] into a
    /// generator constructed with the same spec, core, and seed.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] if the cursor count differs from this
    /// generator's configuration or the input is malformed.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.rng = DetRng::decode(r)?;
        let cursors: Vec<u64> = Vec::decode(r)?;
        if cursors.len() != self.cursors.len() {
            return Err(SnapError::corrupt("stream cursor count mismatch"));
        }
        self.cursors = cursors;
        self.next_stream = r.take_usize()?;
        if self.next_stream >= self.cursors.len() {
            return Err(SnapError::corrupt("stream cursor index out of range"));
        }
        self.gap_left = r.take_u32()?;
        self.pending_sibling = Option::decode(r)?;
        Ok(())
    }

    fn sequential_line(&mut self) -> LineAddr {
        let s = self.next_stream;
        self.next_stream = (self.next_stream + 1) % self.cursors.len();
        let off = self.cursors[s];
        self.cursors[s] = (off + 1) % self.spec.footprint_lines;
        LineAddr(self.region_base + off)
    }

    fn random_line(&mut self) -> LineAddr {
        LineAddr(self.region_base + self.rng.gen_range(self.spec.footprint_lines))
    }

    /// Skips directly to the next memory operation, consuming the same RNG
    /// draws as stepping through the intervening [`Op::NonMem`] instructions.
    /// Used for cache warm-up fast-forwarding.
    pub fn next_mem(&mut self) -> Op {
        // Consume the gap draw exactly as next_op() would.
        self.gap_left = self.rng.gen_range(self.mean_gap as u64 * 2 + 1) as u32;
        self.mem_op()
    }

    fn mem_op(&mut self) -> Op {
        let is_write = self.rng.gen_bool(self.spec.write_fraction);
        // A queued row-sibling access takes precedence: it lands within a few
        // nanoseconds of its partner, inside the tRAS row-hit window.
        if let Some(off) = self.pending_sibling.take() {
            let line = LineAddr(self.region_base + off);
            return if is_write {
                Op::Store { line }
            } else {
                Op::Load {
                    line,
                    dependent: false,
                }
            };
        }
        let (line, dependent, sequential) = match self.spec.pattern {
            Pattern::Streaming { .. } => (self.sequential_line(), false, true),
            Pattern::Random { dependent_fraction } => (
                self.random_line(),
                self.rng.gen_bool(dependent_fraction),
                false,
            ),
            Pattern::GraphMixed {
                random_fraction, ..
            } => {
                if self.rng.gen_bool(random_fraction) {
                    (self.random_line(), false, false)
                } else {
                    (self.sequential_line(), false, true)
                }
            }
        };
        // Queue the same-row sibling: the line 32 lines ahead within the page.
        let sibling_p = self.sibling_probability();
        if sequential && self.rng.gen_bool(sibling_p) {
            let off = line.0 - self.region_base;
            if off % 64 < 32 && off + 32 < self.spec.footprint_lines {
                self.pending_sibling = Some(off + 32);
            }
        }
        if is_write {
            Op::Store { line }
        } else {
            Op::Load { line, dependent }
        }
    }
}

impl InstructionStream for WorkloadGen {
    fn next_op(&mut self) -> Op {
        if self.gap_left > 0 {
            self.gap_left -= 1;
            return Op::NonMem;
        }
        // Uniform jitter in [0, 2*mean_gap]: mean = mean_gap.
        self.gap_left = self.rng.gen_range(self.mean_gap as u64 * 2 + 1) as u32;
        self.mem_op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ALL_WORKLOADS;
    use std::collections::HashSet;

    fn count_ops(gen: &mut WorkloadGen, n: u64) -> (u64, u64, u64) {
        let (mut loads, mut stores, mut deps) = (0, 0, 0);
        for _ in 0..n {
            match gen.next_op() {
                Op::Load { dependent, .. } => {
                    loads += 1;
                    if dependent {
                        deps += 1;
                    }
                }
                Op::Store { .. } => stores += 1,
                _ => {}
            }
        }
        (loads, stores, deps)
    }

    #[test]
    fn mem_pki_approximately_matches_spec() {
        for spec in ALL_WORKLOADS {
            let mut gen = WorkloadGen::new(spec, 0, 7);
            let n = 2_000_000;
            let (loads, stores, _) = count_ops(&mut gen, n);
            let pki = (loads + stores) as f64 * 1000.0 / n as f64;
            assert!(
                (pki - spec.mem_pki).abs() < spec.mem_pki * 0.15,
                "{}: generated {pki:.1} mem-PKI, spec {:.1}",
                spec.name,
                spec.mem_pki
            );
        }
    }

    #[test]
    fn write_fraction_approximately_matches_spec() {
        for spec in ALL_WORKLOADS.iter().filter(|w| w.mem_pki > 5.0) {
            let mut gen = WorkloadGen::new(spec, 0, 13);
            let (loads, stores, _) = count_ops(&mut gen, 1_000_000);
            let frac = stores as f64 / (loads + stores) as f64;
            assert!(
                (frac - spec.write_fraction).abs() < 0.05,
                "{}: write fraction {frac:.2} vs {:.2}",
                spec.name,
                spec.write_fraction
            );
        }
    }

    #[test]
    fn streaming_lines_are_sequential_with_row_siblings() {
        let spec = WorkloadSpec::by_name("copy").unwrap();
        let mut gen = WorkloadGen::new(spec, 0, 3);
        let mut lines = Vec::new();
        for _ in 0..200_000 {
            if let Op::Load { line, .. } | Op::Store { line } = gen.next_op() {
                lines.push(line.0);
            }
        }
        // Each access should be either the successor of a recent access (a
        // stream advancing) or a +32 row sibling of a recent access.
        let window = 8usize;
        let (mut seq, mut sib, mut other) = (0u64, 0u64, 0u64);
        for i in window..lines.len() {
            let recent = &lines[i - window..i];
            let l = lines[i];
            if recent.iter().any(|&r| l == r + 1) {
                seq += 1;
            } else if recent.iter().any(|&r| l == r + 32) {
                sib += 1;
            } else {
                other += 1;
            }
        }
        let total = (seq + sib + other) as f64;
        assert!(
            seq as f64 > total * 0.5,
            "sequential fraction too low: {seq}/{total}"
        );
        // Consecutive siblings classify as "seq" (L+33 follows L+32), so the
        // residual sibling fraction is modest.
        assert!(
            sib as f64 > total * 0.05,
            "row siblings missing: {sib}/{total}"
        );
        assert!(
            (other as f64) < total * 0.1,
            "unexplained accesses: {other}/{total}"
        );
    }

    #[test]
    fn random_pattern_covers_footprint() {
        let spec = WorkloadSpec::by_name("mcf").unwrap();
        let mut gen = WorkloadGen::new(spec, 0, 5);
        let mut lines = HashSet::new();
        for _ in 0..500_000 {
            if let Op::Load { line, .. } | Op::Store { line } = gen.next_op() {
                lines.insert(line.0);
            }
        }
        assert!(
            lines.len() > 5_000,
            "random workload touched only {} lines",
            lines.len()
        );
    }

    #[test]
    fn cores_use_disjoint_regions() {
        let spec = WorkloadSpec::by_name("bwaves").unwrap();
        let mut g0 = WorkloadGen::new(spec, 0, 7);
        let mut g1 = WorkloadGen::new(spec, 1, 7);
        let collect = |g: &mut WorkloadGen| {
            let mut v = HashSet::new();
            for _ in 0..100_000 {
                if let Op::Load { line, .. } | Op::Store { line } = g.next_op() {
                    v.insert(line.0);
                }
            }
            v
        };
        let a = collect(&mut g0);
        let b = collect(&mut g1);
        assert!(a.is_disjoint(&b), "core regions overlap");
    }

    #[test]
    fn dependent_loads_only_for_random_patterns() {
        let mcf = WorkloadSpec::by_name("mcf").unwrap();
        let mut gen = WorkloadGen::new(mcf, 0, 9);
        let (loads, _, deps) = count_ops(&mut gen, 1_000_000);
        let frac = deps as f64 / loads as f64;
        assert!((frac - 0.25).abs() < 0.05, "dependent fraction {frac}");

        let copy = WorkloadSpec::by_name("copy").unwrap();
        let mut gen = WorkloadGen::new(copy, 0, 9);
        let (_, _, deps) = count_ops(&mut gen, 200_000);
        assert_eq!(deps, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = WorkloadSpec::by_name("PageRank").unwrap();
        let mut a = WorkloadGen::new(spec, 2, 42);
        let mut b = WorkloadGen::new(spec, 2, 42);
        for _ in 0..10_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}

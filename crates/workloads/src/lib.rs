//! # autorfm-workloads
//!
//! Synthetic workload generators and Rowhammer attack patterns.
//!
//! The paper evaluates on SPEC-2017, GAP, and STREAM binaries (Table V). Real
//! traces are not redistributable, so this crate provides one synthetic
//! generator per named workload, calibrated to reproduce each benchmark's
//! memory behaviour class (streaming / random / graph-mixed), memory intensity
//! (ACT-PKI) and write mix. Every spec also records the paper's reported
//! ACT-PKI and ACT-per-tREFI so the Table-V harness can print paper-vs-measured
//! side by side. See DESIGN.md ("Substitutions") for why this preserves the
//! paper's results.
//!
//! The [`attacks`] module provides the adversarial access patterns used by the
//! security analyses: single-/double-sided hammering, the MINT-adversarial
//! circular pattern of Appendix A, Half-Double \[23\], and the mixed
//! direct+fractal attack of Appendix B.
//!
//! # Examples
//!
//! ```
//! use autorfm_workloads::{WorkloadGen, WorkloadSpec};
//! use autorfm_cpu::InstructionStream;
//!
//! let spec = WorkloadSpec::by_name("bwaves").unwrap();
//! let mut gen = WorkloadGen::new(spec, /*core=*/0, /*seed=*/42);
//! let _first_op = gen.next_op();
//! assert_eq!(spec.paper_act_pki, 35.7);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attacks;
pub mod generator;
pub mod memo;
pub mod spec;
pub mod tracefile;

pub use attacks::{AttackPattern, AttackStream};
pub use generator::WorkloadGen;
pub use memo::{MemoCursor, TraceMemo};
pub use spec::{Pattern, Suite, WorkloadSpec, ALL_WORKLOADS};
pub use tracefile::{TraceFile, TraceOp, TraceReplay};

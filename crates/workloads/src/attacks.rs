//! Rowhammer attack patterns (threat model of Section II-A).
//!
//! Attack patterns are row-level activation sequences against a single bank —
//! the attacker's optimal strategy never benefits from spreading over banks
//! (each bank's tracker is independent). The security harness drives these
//! directly into the DRAM device or into a tracker+mitigation stack.

use autorfm_sim_core::{DetRng, RowAddr};

/// An adversarial activation pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackPattern {
    /// Classic single-sided hammering of one aggressor row.
    SingleSided {
        /// The hammered row.
        aggressor: RowAddr,
    },
    /// Double-sided hammering: alternate the two rows sandwiching the victim.
    DoubleSided {
        /// The victim row (aggressors are `victim ± 1`).
        victim: RowAddr,
    },
    /// The MINT-adversarial pattern of Appendix A: `window` unique rows
    /// activated in a circular fashion, `(A B C D)^K`.
    Circular {
        /// First row of the set.
        base: RowAddr,
        /// Number of distinct rows (should equal the tracker window).
        window: u32,
    },
    /// Half-Double \[23\]: hammer far aggressors (distance 2) heavily plus a few
    /// near (distance 1) activations, flipping bits in the middle row via
    /// transitive disturbance from the victim refreshes.
    HalfDouble {
        /// The ultimate victim row; far aggressors are `victim ± 2`, near
        /// aggressors `victim ± 1`.
        victim: RowAddr,
        /// Near-row activations interleaved per far-row burst.
        near_ratio: u32,
    },
    /// A decoy pattern that defeats deterministic single-entry trackers:
    /// one aggressor activation followed by `decoys` distinct decoy rows.
    Decoy {
        /// The true aggressor row.
        aggressor: RowAddr,
        /// Number of decoy rows per aggressor activation.
        decoys: u32,
    },
}

/// An infinite stream of row activations realizing an [`AttackPattern`].
#[derive(Debug, Clone)]
pub struct AttackStream {
    pattern: AttackPattern,
    step: u64,
}

impl AttackStream {
    /// Creates the stream.
    pub fn new(pattern: AttackPattern) -> Self {
        AttackStream { pattern, step: 0 }
    }

    /// The pattern being generated.
    pub fn pattern(&self) -> AttackPattern {
        self.pattern
    }

    /// Produces the next row to activate. `rng` is unused by the deterministic
    /// patterns but kept in the signature for randomized variants.
    pub fn next_row(&mut self, _rng: &mut DetRng) -> RowAddr {
        let i = self.step;
        self.step += 1;
        match self.pattern {
            AttackPattern::SingleSided { aggressor } => aggressor,
            AttackPattern::DoubleSided { victim } => {
                if i.is_multiple_of(2) {
                    RowAddr(victim.0 - 1)
                } else {
                    RowAddr(victim.0 + 1)
                }
            }
            AttackPattern::Circular { base, window } => {
                RowAddr(base.0 + (i % window as u64) as u32)
            }
            AttackPattern::HalfDouble { victim, near_ratio } => {
                // Mostly hammer the distance-2 rows; sprinkle distance-1
                // activations so the victim's neighbors accumulate refreshes.
                let burst = (near_ratio as u64 + 2).max(3);
                match i % burst {
                    0 => RowAddr(victim.0 - 2),
                    1 => RowAddr(victim.0 + 2),
                    k if k % 2 == 0 => RowAddr(victim.0 - 1),
                    _ => RowAddr(victim.0 + 1),
                }
            }
            AttackPattern::Decoy { aggressor, decoys } => {
                let period = decoys as u64 + 1;
                if i.is_multiple_of(period) {
                    aggressor
                } else {
                    RowAddr(aggressor.0 + 1000 + (i % period) as u32)
                }
            }
        }
    }

    /// The victim rows whose bit-flips this pattern targets.
    pub fn target_victims(&self) -> Vec<RowAddr> {
        match self.pattern {
            AttackPattern::SingleSided { aggressor } => {
                vec![
                    RowAddr(aggressor.0.wrapping_sub(1)),
                    RowAddr(aggressor.0 + 1),
                ]
            }
            AttackPattern::DoubleSided { victim } | AttackPattern::HalfDouble { victim, .. } => {
                vec![victim]
            }
            AttackPattern::Circular { base, window } => (0..window)
                .flat_map(|k| {
                    [
                        RowAddr((base.0 + k).wrapping_sub(1)),
                        RowAddr(base.0 + k + 1),
                    ]
                })
                .collect(),
            AttackPattern::Decoy { aggressor, .. } => {
                vec![
                    RowAddr(aggressor.0.wrapping_sub(1)),
                    RowAddr(aggressor.0 + 1),
                ]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(pattern: AttackPattern, n: usize) -> Vec<u32> {
        let mut s = AttackStream::new(pattern);
        let mut rng = DetRng::seeded(0);
        (0..n).map(|_| s.next_row(&mut rng).0).collect()
    }

    #[test]
    fn single_sided_repeats_one_row() {
        let r = rows(
            AttackPattern::SingleSided {
                aggressor: RowAddr(100),
            },
            10,
        );
        assert!(r.iter().all(|&x| x == 100));
    }

    #[test]
    fn double_sided_alternates_sandwich() {
        let r = rows(
            AttackPattern::DoubleSided {
                victim: RowAddr(100),
            },
            6,
        );
        assert_eq!(r, vec![99, 101, 99, 101, 99, 101]);
    }

    #[test]
    fn circular_cycles_window_rows() {
        let r = rows(
            AttackPattern::Circular {
                base: RowAddr(10),
                window: 4,
            },
            8,
        );
        assert_eq!(r, vec![10, 11, 12, 13, 10, 11, 12, 13]);
    }

    #[test]
    fn half_double_mixes_far_and_near() {
        let r = rows(
            AttackPattern::HalfDouble {
                victim: RowAddr(100),
                near_ratio: 2,
            },
            100,
        );
        assert!(r.contains(&98) && r.contains(&102), "far rows hammered");
        assert!(r.contains(&99) && r.contains(&101), "near rows touched");
        let far = r.iter().filter(|&&x| x == 98 || x == 102).count();
        assert!(far >= 40, "far rows should dominate: {far}");
    }

    #[test]
    fn decoy_hits_aggressor_periodically() {
        let r = rows(
            AttackPattern::Decoy {
                aggressor: RowAddr(50),
                decoys: 2,
            },
            9,
        );
        assert_eq!(r.iter().filter(|&&x| x == 50).count(), 3);
        assert_eq!(r[0], 50);
        assert_ne!(r[1], 50);
    }

    #[test]
    fn victims_identified() {
        let s = AttackStream::new(AttackPattern::DoubleSided { victim: RowAddr(7) });
        assert_eq!(s.target_victims(), vec![RowAddr(7)]);
        let s = AttackStream::new(AttackPattern::Circular {
            base: RowAddr(10),
            window: 2,
        });
        assert_eq!(s.target_victims().len(), 4);
    }
}

//! Trace-file import/export: record an instruction stream to a portable text
//! format and replay it later — the bridge for users who have *real* program
//! traces (e.g. from Pin/DynamoRIO) instead of the synthetic generators.
//!
//! Format: one memory operation per line, preceded by the number of
//! non-memory instructions since the previous one:
//!
//! ```text
//! # comment lines start with '#'
//! <gap> L  <line-hex>   # load
//! <gap> LD <line-hex>   # dependent load (serializes dispatch)
//! <gap> S  <line-hex>   # store
//! <gap> F  <line-hex>   # cache-line flush (CLFLUSH)
//! ```

use autorfm_cpu::{InstructionStream, Op};
use autorfm_sim_core::{ConfigError, LineAddr};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// One recorded memory operation with its preceding compute gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions before this operation.
    pub gap: u32,
    /// The memory operation (never [`Op::NonMem`]).
    pub op: Op,
}

/// A loaded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    ops: Vec<TraceOp>,
}

impl TraceFile {
    /// Records up to `max_mem_ops` memory operations from `stream` to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on I/O failure.
    pub fn record<S: InstructionStream>(
        path: &Path,
        stream: &mut S,
        max_mem_ops: u64,
    ) -> Result<(), ConfigError> {
        let file = std::fs::File::create(path)
            .map_err(|e| ConfigError::new(format!("create {}: {e}", path.display())))?;
        let mut w = BufWriter::new(file);
        let io_err = |e: std::io::Error| ConfigError::new(format!("write trace: {e}"));
        writeln!(w, "# autorfm trace v1").map_err(io_err)?;
        let mut gap = 0u32;
        let mut written = 0u64;
        while written < max_mem_ops {
            match stream.next_op() {
                Op::NonMem => gap += 1,
                Op::Load { line, dependent } => {
                    let tag = if dependent { "LD" } else { "L" };
                    writeln!(w, "{gap} {tag} {:x}", line.0).map_err(io_err)?;
                    gap = 0;
                    written += 1;
                }
                Op::Store { line } => {
                    writeln!(w, "{gap} S {:x}", line.0).map_err(io_err)?;
                    gap = 0;
                    written += 1;
                }
                Op::Flush { line } => {
                    writeln!(w, "{gap} F {:x}", line.0).map_err(io_err)?;
                    gap = 0;
                    written += 1;
                }
            }
        }
        w.flush().map_err(io_err)
    }

    /// Loads a trace from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on I/O failure or malformed lines.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let file = std::fs::File::open(path)
            .map_err(|e| ConfigError::new(format!("open {}: {e}", path.display())))?;
        let mut ops = Vec::new();
        for (idx, line) in BufReader::new(file).lines().enumerate() {
            let line = line.map_err(|e| ConfigError::new(format!("read trace: {e}")))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            fn field<'a>(
                v: Option<&'a str>,
                what: &str,
                lineno: usize,
            ) -> Result<&'a str, ConfigError> {
                v.ok_or_else(|| ConfigError::new(format!("line {lineno}: missing {what}")))
            }
            let gap: u32 = field(parts.next(), "gap", idx + 1)?
                .parse()
                .map_err(|_| ConfigError::new(format!("line {}: bad gap", idx + 1)))?;
            let kind = field(parts.next(), "op kind", idx + 1)?;
            let addr = u64::from_str_radix(field(parts.next(), "address", idx + 1)?, 16)
                .map_err(|_| ConfigError::new(format!("line {}: bad address", idx + 1)))?;
            let line_addr = LineAddr(addr);
            let op = match kind {
                "L" => Op::Load {
                    line: line_addr,
                    dependent: false,
                },
                "LD" => Op::Load {
                    line: line_addr,
                    dependent: true,
                },
                "S" => Op::Store { line: line_addr },
                "F" => Op::Flush { line: line_addr },
                other => {
                    return Err(ConfigError::new(format!(
                        "line {}: unknown op {other}",
                        idx + 1
                    )))
                }
            };
            ops.push(TraceOp { gap, op });
        }
        if ops.is_empty() {
            return Err(ConfigError::new("trace contains no operations"));
        }
        Ok(TraceFile { ops })
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Creates a replaying instruction stream; the trace loops forever (rate
    /// mode replays the slice repeatedly, like the paper's 1B-instruction
    /// slices).
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay {
            trace: self,
            idx: 0,
            gap_left: self.ops[0].gap,
        }
    }
}

/// An [`InstructionStream`] replaying a [`TraceFile`] in a loop.
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    trace: &'a TraceFile,
    idx: usize,
    gap_left: u32,
}

impl InstructionStream for TraceReplay<'_> {
    fn next_op(&mut self) -> Op {
        if self.gap_left > 0 {
            self.gap_left -= 1;
            return Op::NonMem;
        }
        let op = self.trace.ops[self.idx].op;
        self.idx = (self.idx + 1) % self.trace.ops.len();
        self.gap_left = self.trace.ops[self.idx].gap;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WorkloadGen, WorkloadSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("autorfm-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn record_and_replay_round_trip() {
        let spec = WorkloadSpec::by_name("mcf").unwrap();
        let mut gen = WorkloadGen::new(spec, 0, 7);
        let path = tmp("roundtrip.trace");
        TraceFile::record(&path, &mut gen, 500).unwrap();
        let trace = TraceFile::load(&path).unwrap();
        assert_eq!(trace.ops().len(), 500);

        // Replay reproduces the same op sequence as a fresh generator.
        let mut fresh = WorkloadGen::new(spec, 0, 7);
        let mut replay = trace.replay();
        for i in 0..5_000 {
            let expected = fresh.next_op();
            let got = replay.next_op();
            assert_eq!(got, expected, "divergence at instruction {i}");
        }
    }

    #[test]
    fn replay_loops_past_the_end() {
        let path = tmp("looping.trace");
        std::fs::write(&path, "# test\n0 L a\n1 S b\n").unwrap();
        let trace = TraceFile::load(&path).unwrap();
        let mut replay = trace.replay();
        let mut mem_ops = Vec::new();
        for _ in 0..9 {
            match replay.next_op() {
                Op::NonMem => {}
                op => mem_ops.push(op),
            }
        }
        assert!(mem_ops.len() >= 4, "trace must loop: {mem_ops:?}");
        assert_eq!(
            mem_ops[0],
            Op::Load {
                line: LineAddr(0xa),
                dependent: false
            }
        );
        assert_eq!(
            mem_ops[1],
            Op::Store {
                line: LineAddr(0xb)
            }
        );
        assert_eq!(
            mem_ops[2],
            Op::Load {
                line: LineAddr(0xa),
                dependent: false
            }
        );
    }

    #[test]
    fn all_op_kinds_round_trip() {
        let path = tmp("kinds.trace");
        std::fs::write(&path, "2 L 10\n0 LD 20\n3 S 30\n1 F 40\n").unwrap();
        let trace = TraceFile::load(&path).unwrap();
        let ops: Vec<Op> = trace.ops().iter().map(|t| t.op).collect();
        assert_eq!(
            ops,
            vec![
                Op::Load {
                    line: LineAddr(0x10),
                    dependent: false
                },
                Op::Load {
                    line: LineAddr(0x20),
                    dependent: true
                },
                Op::Store {
                    line: LineAddr(0x30)
                },
                Op::Flush {
                    line: LineAddr(0x40)
                },
            ]
        );
        assert_eq!(trace.ops()[0].gap, 2);
    }

    #[test]
    fn malformed_traces_rejected() {
        let path = tmp("bad1.trace");
        std::fs::write(&path, "nonsense\n").unwrap();
        assert!(TraceFile::load(&path).is_err());

        let path = tmp("bad2.trace");
        std::fs::write(&path, "0 X 10\n").unwrap();
        assert!(TraceFile::load(&path).is_err());

        let path = tmp("bad3.trace");
        std::fs::write(&path, "0 L zz_not_hex_g\n").unwrap();
        assert!(TraceFile::load(&path).is_err());

        let path = tmp("empty.trace");
        std::fs::write(&path, "# nothing\n").unwrap();
        assert!(TraceFile::load(&path).is_err());

        assert!(TraceFile::load(&tmp("does-not-exist.trace")).is_err());
    }
}

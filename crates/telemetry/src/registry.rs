//! The labeled metrics registry.
//!
//! A [`Registry`] is a flat, ordered collection of named metrics, each with an
//! optional label set (`("bank", "3")`-style pairs) and a value: a monotonic
//! counter, a point-in-time gauge, or a binned histogram with quantile
//! support. The simulator's [`autorfm_sim_core`] statistics primitives
//! ([`Counter`], [`Average`], [`Ratio`], [`Histogram`]) plug in directly via
//! the `record_*` helpers.

use crate::json::Json;
use autorfm_sim_core::{Average, Counter, Histogram, Ratio};
use std::fmt;

/// An owned snapshot of a binned histogram, with quantile estimation.
///
/// Quantiles use the classic binned estimate (as `histogram_quantile` in
/// Prometheus): locate the bin holding rank `q · total` and interpolate
/// linearly inside it. Samples in the overflow bin resolve to the recorded
/// maximum.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Width of each bin.
    pub bin_width: u64,
    /// Per-bin counts; bin `i` covers `[i·w, (i+1)·w)`.
    pub bins: Vec<u64>,
    /// Samples beyond the last bin.
    pub overflow: u64,
    /// Total recorded samples.
    pub total: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Largest recorded sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the binned counts.
    ///
    /// Returns `0.0` for an empty histogram. `q <= 0` yields the lower edge of
    /// the first non-empty bin; `q >= 1` (or any rank landing in the overflow
    /// bin) yields the recorded maximum.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if q >= 1.0 {
            return self.max as f64;
        }
        let rank = (q.max(0.0) * self.total as f64).max(f64::MIN_POSITIVE);
        let mut cum = 0u64;
        for (i, &count) in self.bins.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let before = cum;
            cum += count;
            if cum as f64 >= rank {
                let lo = (i as u64 * self.bin_width) as f64;
                let frac = (rank - before as f64) / count as f64;
                return lo + self.bin_width as f64 * frac;
            }
        }
        // Rank lands in the overflow bin (or floating-point slop ate it).
        self.max as f64
    }
}

impl From<&Histogram> for HistogramSnapshot {
    fn from(h: &Histogram) -> Self {
        HistogramSnapshot {
            bin_width: h.bin_width(),
            bins: h.bins().to_vec(),
            overflow: h.overflow(),
            total: h.total(),
            sum: h.sum() as f64,
            max: h.max(),
        }
    }
}

/// The value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing event count.
    Counter(u64),
    /// A point-in-time or derived value.
    Gauge(f64),
    /// A binned distribution.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// A scalar view: the counter value, the gauge, or the histogram mean.
    pub fn scalar(&self) -> f64 {
        match self {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.mean(),
        }
    }
}

/// One named, labeled metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name, e.g. `"dram_acts"`.
    pub name: String,
    /// Label pairs, e.g. `[("scenario", "AutoRFM-4")]`. May be empty.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

impl Metric {
    /// `name{k=v,…}` — the canonical identity used for lookups and diffs.
    pub fn key(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {:.6}", self.key(), self.value.scalar())
    }
}

/// An ordered collection of labeled metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: Vec<Metric>,
}

/// Borrowed label pairs, as accepted by the `record_*` methods.
pub type Labels<'a> = &'a [(&'a str, &'a str)];

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: &str, labels: Labels<'_>, value: MetricValue) {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(existing) = self
            .metrics
            .iter_mut()
            .find(|m| m.name == name && m.labels == labels)
        {
            existing.value = value;
        } else {
            self.metrics.push(Metric {
                name: name.to_string(),
                labels,
                value,
            });
        }
    }

    /// Records (or replaces) a counter metric.
    pub fn counter(&mut self, name: &str, labels: Labels<'_>, value: u64) {
        self.push(name, labels, MetricValue::Counter(value));
    }

    /// Records (or replaces) a gauge metric.
    pub fn gauge(&mut self, name: &str, labels: Labels<'_>, value: f64) {
        self.push(name, labels, MetricValue::Gauge(value));
    }

    /// Adds `delta` to a counter metric, creating it at `delta` if absent.
    /// Unlike [`Registry::counter`] (which replaces the value), this is the
    /// accumulation primitive long-running services want: each event site
    /// bumps the metric without owning its total. A same-identity metric
    /// that is not a counter is replaced by `Counter(delta)`.
    pub fn incr_counter(&mut self, name: &str, labels: Labels<'_>, delta: u64) {
        let current = match self.get(name, labels) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        self.push(name, labels, MetricValue::Counter(current + delta));
    }

    /// Records (or replaces) a histogram metric from a snapshot.
    pub fn histogram(&mut self, name: &str, labels: Labels<'_>, snap: HistogramSnapshot) {
        self.push(name, labels, MetricValue::Histogram(snap));
    }

    /// Plugs a [`Counter`] in as a counter metric.
    pub fn record_counter(&mut self, name: &str, labels: Labels<'_>, c: &Counter) {
        self.counter(name, labels, c.get());
    }

    /// Plugs an [`Average`] in as a gauge of its mean.
    pub fn record_average(&mut self, name: &str, labels: Labels<'_>, a: &Average) {
        self.gauge(name, labels, a.mean());
    }

    /// Plugs a [`Ratio`] in as a gauge of its value.
    pub fn record_ratio(&mut self, name: &str, labels: Labels<'_>, r: &Ratio) {
        self.gauge(name, labels, r.value());
    }

    /// Plugs a [`Histogram`] in as a histogram metric.
    pub fn record_histogram(&mut self, name: &str, labels: Labels<'_>, h: &Histogram) {
        self.histogram(name, labels, HistogramSnapshot::from(h));
    }

    /// All metrics, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.iter()
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Looks a metric up by name and exact label set.
    pub fn get(&self, name: &str, labels: Labels<'_>) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| {
                m.name == name
                    && m.labels.len() == labels.len()
                    && m.labels
                        .iter()
                        .zip(labels.iter())
                        .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
            })
            .map(|m| &m.value)
    }

    /// Serializes the registry as a JSON array of metric objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.metrics
                .iter()
                .map(|m| {
                    let mut pairs = vec![("name", Json::Str(m.name.clone()))];
                    if !m.labels.is_empty() {
                        pairs.push((
                            "labels",
                            Json::Obj(
                                m.labels
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                    .collect(),
                            ),
                        ));
                    }
                    match &m.value {
                        MetricValue::Counter(v) => {
                            pairs.push(("type", Json::Str("counter".into())));
                            pairs.push(("value", Json::Num(*v as f64)));
                        }
                        MetricValue::Gauge(v) => {
                            pairs.push(("type", Json::Str("gauge".into())));
                            pairs.push(("value", Json::Num(*v)));
                        }
                        MetricValue::Histogram(h) => {
                            pairs.push(("type", Json::Str("histogram".into())));
                            pairs.push((
                                "value",
                                Json::obj(vec![
                                    ("bin_width", Json::Num(h.bin_width as f64)),
                                    (
                                        "bins",
                                        Json::Arr(
                                            h.bins.iter().map(|&c| Json::Num(c as f64)).collect(),
                                        ),
                                    ),
                                    ("overflow", Json::Num(h.overflow as f64)),
                                    ("total", Json::Num(h.total as f64)),
                                    ("sum", Json::Num(h.sum)),
                                    ("max", Json::Num(h.max as f64)),
                                    ("p50", Json::Num(h.quantile(0.50))),
                                    ("p90", Json::Num(h.quantile(0.90))),
                                    ("p99", Json::Num(h.quantile(0.99))),
                                ]),
                            ));
                        }
                    }
                    Json::obj(pairs)
                })
                .collect(),
        )
    }

    /// Reconstructs a registry from [`Registry::to_json`] output.
    ///
    /// Unknown metric types are skipped (forward compatibility).
    pub fn from_json(json: &Json) -> Registry {
        let mut reg = Registry::new();
        let Some(items) = json.as_arr() else {
            return reg;
        };
        for item in items {
            let Some(name) = item.get("name").and_then(Json::as_str) else {
                continue;
            };
            let labels: Vec<(String, String)> = match item.get("labels") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .filter_map(|(k, v)| v.as_str().map(|v| (k.clone(), v.to_string())))
                    .collect(),
                _ => Vec::new(),
            };
            let value = match (item.get("type").and_then(Json::as_str), item.get("value")) {
                (Some("counter"), Some(v)) => v.as_u64().map(MetricValue::Counter),
                (Some("gauge"), Some(v)) => v.as_f64().map(MetricValue::Gauge),
                (Some("histogram"), Some(v)) => Some(MetricValue::Histogram(HistogramSnapshot {
                    bin_width: v.get("bin_width").and_then(Json::as_u64).unwrap_or(1),
                    bins: v
                        .get("bins")
                        .and_then(Json::as_arr)
                        .map(|xs| xs.iter().filter_map(Json::as_u64).collect())
                        .unwrap_or_default(),
                    overflow: v.get("overflow").and_then(Json::as_u64).unwrap_or(0),
                    total: v.get("total").and_then(Json::as_u64).unwrap_or(0),
                    sum: v.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
                    max: v.get("max").and_then(Json::as_u64).unwrap_or(0),
                })),
                _ => None,
            };
            if let Some(value) = value {
                reg.metrics.push(Metric {
                    name: name.to_string(),
                    labels,
                    value,
                });
            }
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist() -> HistogramSnapshot {
        // 100 samples spread evenly: 10 in each of bins [0,10), [10,20), …
        HistogramSnapshot {
            bin_width: 10,
            bins: vec![10; 10],
            overflow: 0,
            total: 100,
            sum: 5_000.0,
            max: 99,
        }
    }

    #[test]
    fn quantile_uniform_interpolates() {
        let h = uniform_hist();
        // Rank 50 lands at the end of bin 4 ([40,50)): 40 + 10·(50−40)/10 = 50.
        assert!((h.quantile(0.5) - 50.0).abs() < 1e-9);
        assert!((h.quantile(0.25) - 25.0).abs() < 1e-9);
        // Interpolation inside a bin: rank 95 → 90 + 10·(95−90)/10 = 95.
        assert!((h.quantile(0.95) - 95.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_edges() {
        let h = uniform_hist();
        assert_eq!(h.quantile(1.0), 99.0, "p100 is the recorded max");
        assert!(h.quantile(0.0) <= 10.0, "p0 stays in the first bin");
        let empty = HistogramSnapshot {
            bin_width: 1,
            bins: vec![0; 4],
            overflow: 0,
            total: 0,
            sum: 0.0,
            max: 0,
        };
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_overflow_resolves_to_max() {
        let h = HistogramSnapshot {
            bin_width: 10,
            bins: vec![5, 0, 0],
            overflow: 5,
            total: 10,
            sum: 0.0,
            max: 1234,
        };
        assert_eq!(h.quantile(0.9), 1234.0);
        assert!(h.quantile(0.4) <= 10.0);
    }

    #[test]
    fn quantile_single_spike() {
        // All mass in one width-1 bin: every quantile stays inside [7, 8).
        let h = HistogramSnapshot {
            bin_width: 1,
            bins: vec![0, 0, 0, 0, 0, 0, 0, 20],
            overflow: 0,
            total: 20,
            sum: 140.0,
            max: 7,
        };
        for q in [0.01, 0.5, 0.99] {
            let v = h.quantile(q);
            assert!((7.0..8.0).contains(&v), "q{q} -> {v}");
        }
    }

    #[test]
    fn from_sim_core_histogram() {
        let mut h = Histogram::new(5, 4);
        for v in [0, 4, 5, 19, 100] {
            h.record(v);
        }
        let snap = HistogramSnapshot::from(&h);
        assert_eq!(snap.bins, vec![2, 1, 0, 1]);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.total, 5);
        assert_eq!(snap.max, 100);
        assert!((snap.mean() - 128.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn registry_lookup_and_replace() {
        let mut reg = Registry::new();
        reg.counter("acts", &[("bank", "0")], 10);
        reg.counter("acts", &[("bank", "1")], 20);
        reg.counter("acts", &[("bank", "0")], 15); // replace
        reg.gauge("ipc", &[], 1.5);
        assert_eq!(reg.len(), 3);
        assert_eq!(
            reg.get("acts", &[("bank", "0")]),
            Some(&MetricValue::Counter(15))
        );
        assert_eq!(reg.get("ipc", &[]), Some(&MetricValue::Gauge(1.5)));
        assert_eq!(reg.get("acts", &[]), None, "labels are part of identity");
    }

    #[test]
    fn incr_counter_accumulates() {
        let mut reg = Registry::new();
        reg.incr_counter("cells_done", &[], 1);
        reg.incr_counter("cells_done", &[], 2);
        reg.incr_counter("cells_done", &[("campaign", "a")], 5);
        assert_eq!(reg.get("cells_done", &[]), Some(&MetricValue::Counter(3)));
        assert_eq!(
            reg.get("cells_done", &[("campaign", "a")]),
            Some(&MetricValue::Counter(5))
        );
        // A non-counter under the same identity is replaced, not summed.
        reg.gauge("load", &[], 9.0);
        reg.incr_counter("load", &[], 4);
        assert_eq!(reg.get("load", &[]), Some(&MetricValue::Counter(4)));
    }

    #[test]
    fn sim_core_primitives_plug_in() {
        let mut c = Counter::new();
        c.add(7);
        let avg: Average = [1.0, 3.0].into_iter().collect();
        let mut r = Ratio::new();
        r.add_num(1);
        r.add_denom(4);
        let mut h = Histogram::new(1, 4);
        h.record(2);

        let mut reg = Registry::new();
        reg.record_counter("c", &[], &c);
        reg.record_average("a", &[], &avg);
        reg.record_ratio("r", &[], &r);
        reg.record_histogram("h", &[], &h);
        assert_eq!(reg.get("c", &[]), Some(&MetricValue::Counter(7)));
        assert_eq!(reg.get("a", &[]), Some(&MetricValue::Gauge(2.0)));
        assert_eq!(reg.get("r", &[]), Some(&MetricValue::Gauge(0.25)));
        assert!(matches!(
            reg.get("h", &[]),
            Some(MetricValue::Histogram(s)) if s.total == 1
        ));
    }

    #[test]
    fn json_round_trip() {
        let mut reg = Registry::new();
        reg.counter("acts", &[("scenario", "AutoRFM-4")], 123);
        reg.gauge("ipc", &[], 2.25);
        let mut h = Histogram::new(2, 3);
        h.record(1);
        h.record(5);
        h.record(99);
        reg.record_histogram("lat", &[], &h);

        let json = reg.to_json();
        let back = Registry::from_json(&Json::parse(&json.to_pretty()).unwrap());
        assert_eq!(back, reg);
    }

    #[test]
    fn metric_key_format() {
        let mut reg = Registry::new();
        reg.counter("acts", &[("bank", "3"), ("ch", "0")], 1);
        reg.gauge("ipc", &[], 0.0);
        let keys: Vec<String> = reg.iter().map(Metric::key).collect();
        assert_eq!(keys, vec!["acts{bank=3,ch=0}", "ipc"]);
    }
}

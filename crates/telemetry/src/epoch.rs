//! Epoch time-series sampling.
//!
//! An [`EpochSampler`] divides simulated time into fixed-length windows
//! (per-tREFI by default, matching the paper's Table V / Fig 8b metrics) and
//! converts cumulative system counters into per-window deltas: ACT/ALERT/REF/
//! RFM rates, queue occupancy, row-hit rate, and per-core IPC. The produced
//! [`EpochSeries`] rides on the run manifest and can be dumped as CSV by the
//! `telemetry_report` binary.

use crate::json::Json;
use crate::sink::Sink;
use autorfm_sim_core::Cycle;

/// Cumulative system counters observed at one point in simulated time.
///
/// Producers (the simulation loop) fill this from the DRAM device, memory
/// controller, and CPU model; the sampler turns consecutive observations into
/// per-epoch deltas. All fields except `queue_depth` are cumulative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Observation {
    /// Successful activations (DRAM engine).
    pub acts: u64,
    /// ACTs declined with an ALERT (DRAM engine).
    pub alerts: u64,
    /// Column reads (DRAM engine).
    pub reads: u64,
    /// Column writes (DRAM engine).
    pub writes: u64,
    /// REF commands (DRAM engine).
    pub refs: u64,
    /// Explicit RFM commands (DRAM engine).
    pub rfms: u64,
    /// Mitigations performed (DRAM engine).
    pub mitigations: u64,
    /// Victim refreshes issued (DRAM engine).
    pub victim_refreshes: u64,
    /// Row-buffer hits (memory controller).
    pub row_hits: u64,
    /// Row-buffer misses (memory controller).
    pub row_misses: u64,
    /// Requests currently queued in the controller — a gauge, not cumulative.
    pub queue_depth: u64,
    /// Instructions retired so far, per core (CPU model).
    pub retired: Vec<u64>,
}

/// Per-window deltas and derived rates for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSample {
    /// Zero-based epoch index.
    pub index: u64,
    /// Window start (inclusive).
    pub start: Cycle,
    /// Window end (exclusive; the observation point for the final partial
    /// epoch).
    pub end: Cycle,
    /// Whether this is the trailing partial window of the run.
    pub partial: bool,
    /// ACTs in the window.
    pub acts: u64,
    /// ALERTs in the window.
    pub alerts: u64,
    /// Reads in the window.
    pub reads: u64,
    /// Writes in the window.
    pub writes: u64,
    /// REFs in the window.
    pub refs: u64,
    /// RFMs in the window.
    pub rfms: u64,
    /// Mitigations in the window.
    pub mitigations: u64,
    /// Victim refreshes in the window.
    pub victim_refreshes: u64,
    /// Row-buffer hits in the window.
    pub row_hits: u64,
    /// Row-buffer misses in the window.
    pub row_misses: u64,
    /// Controller queue depth at the end of the window (gauge).
    pub queue_depth: u64,
    /// Per-core IPC over the window (instructions / CPU cycles).
    pub ipc: Vec<f64>,
}

impl EpochSample {
    /// Row-buffer hit rate within the window.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Aggregate IPC (sum over cores) within the window.
    pub fn total_ipc(&self) -> f64 {
        self.ipc.iter().sum()
    }

    /// The scalar column names every sample exposes, in CSV order
    /// (`ipc_core<i>` columns follow, one per core).
    pub const SCALAR_COLUMNS: &'static [&'static str] = &[
        "acts",
        "alerts",
        "reads",
        "writes",
        "refs",
        "rfms",
        "mitigations",
        "victim_refreshes",
        "row_hits",
        "row_misses",
        "queue_depth",
        "row_hit_rate",
        "total_ipc",
    ];

    /// Looks a scalar column up by name (see [`Self::SCALAR_COLUMNS`], plus
    /// `ipc_core<i>`).
    pub fn column(&self, name: &str) -> Option<f64> {
        let v = match name {
            "acts" => self.acts as f64,
            "alerts" => self.alerts as f64,
            "reads" => self.reads as f64,
            "writes" => self.writes as f64,
            "refs" => self.refs as f64,
            "rfms" => self.rfms as f64,
            "mitigations" => self.mitigations as f64,
            "victim_refreshes" => self.victim_refreshes as f64,
            "row_hits" => self.row_hits as f64,
            "row_misses" => self.row_misses as f64,
            "queue_depth" => self.queue_depth as f64,
            "row_hit_rate" => self.row_hit_rate(),
            "total_ipc" => self.total_ipc(),
            _ => {
                let idx: usize = name.strip_prefix("ipc_core")?.parse().ok()?;
                return self.ipc.get(idx).copied();
            }
        };
        Some(v)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("index", Json::Num(self.index as f64)),
            ("start_ns", Json::Num(self.start.as_ns() as f64)),
            ("end_ns", Json::Num(self.end.as_ns() as f64)),
            ("partial", Json::Bool(self.partial)),
            ("acts", Json::Num(self.acts as f64)),
            ("alerts", Json::Num(self.alerts as f64)),
            ("reads", Json::Num(self.reads as f64)),
            ("writes", Json::Num(self.writes as f64)),
            ("refs", Json::Num(self.refs as f64)),
            ("rfms", Json::Num(self.rfms as f64)),
            ("mitigations", Json::Num(self.mitigations as f64)),
            ("victim_refreshes", Json::Num(self.victim_refreshes as f64)),
            ("row_hits", Json::Num(self.row_hits as f64)),
            ("row_misses", Json::Num(self.row_misses as f64)),
            ("queue_depth", Json::Num(self.queue_depth as f64)),
            (
                "ipc",
                Json::Arr(self.ipc.iter().map(|&x| Json::Num(x)).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Option<EpochSample> {
        let num = |k: &str| v.get(k).and_then(Json::as_u64);
        Some(EpochSample {
            index: num("index")?,
            start: Cycle::from_ns(num("start_ns")?),
            end: Cycle::from_ns(num("end_ns")?),
            partial: matches!(v.get("partial"), Some(Json::Bool(true))),
            acts: num("acts").unwrap_or(0),
            alerts: num("alerts").unwrap_or(0),
            reads: num("reads").unwrap_or(0),
            writes: num("writes").unwrap_or(0),
            refs: num("refs").unwrap_or(0),
            rfms: num("rfms").unwrap_or(0),
            mitigations: num("mitigations").unwrap_or(0),
            victim_refreshes: num("victim_refreshes").unwrap_or(0),
            row_hits: num("row_hits").unwrap_or(0),
            row_misses: num("row_misses").unwrap_or(0),
            queue_depth: num("queue_depth").unwrap_or(0),
            ipc: v
                .get("ipc")
                .and_then(Json::as_arr)
                .map(|xs| xs.iter().filter_map(Json::as_f64).collect())
                .unwrap_or_default(),
        })
    }
}

/// The full time series of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochSeries {
    /// Window length used by the sampler.
    pub epoch_len: Cycle,
    /// Samples in time order.
    pub samples: Vec<EpochSample>,
    /// Whether sampling stopped early because `max_samples` was reached.
    pub truncated: bool,
}

impl EpochSeries {
    /// All column names this series can dump (scalars plus per-core IPC).
    pub fn columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = EpochSample::SCALAR_COLUMNS
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cores = self.samples.first().map_or(0, |s| s.ipc.len());
        cols.extend((0..cores).map(|i| format!("ipc_core{i}")));
        cols
    }

    /// Serializes the series.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("epoch_ns", Json::Num(self.epoch_len.as_ns() as f64)),
            ("truncated", Json::Bool(self.truncated)),
            (
                "samples",
                Json::Arr(self.samples.iter().map(EpochSample::to_json).collect()),
            ),
        ])
    }

    /// Reconstructs a series from [`Self::to_json`] output.
    pub fn from_json(v: &Json) -> EpochSeries {
        EpochSeries {
            epoch_len: Cycle::from_ns(v.get("epoch_ns").and_then(Json::as_u64).unwrap_or(0)),
            truncated: matches!(v.get("truncated"), Some(Json::Bool(true))),
            samples: v
                .get("samples")
                .and_then(Json::as_arr)
                .map(|xs| xs.iter().filter_map(EpochSample::from_json).collect())
                .unwrap_or_default(),
        }
    }
}

/// Default cap on stored samples per run (long `--full` runs stay bounded).
pub const DEFAULT_MAX_SAMPLES: usize = 4096;

/// Samples buffered between sink deliveries. The per-tREFI epoch boundary is
/// the most frequent non-memctrl wake on telemetry-enabled runs, so the
/// sampler batches its sink hand-offs: samples accumulate in the series and
/// are forwarded in chunks of this size (plus one final partial chunk at
/// `finish`), in time order, rather than one virtual call per epoch.
pub const SINK_FLUSH_CHUNK: usize = 64;

/// Converts cumulative [`Observation`]s into an [`EpochSeries`].
///
/// Window `k` covers `[k·len, (k+1)·len)`. The producer calls
/// [`EpochSampler::due`] every step (a single comparison — this is the only
/// cost on the hot path) and [`EpochSampler::observe`] when it returns true;
/// [`EpochSampler::finish`] closes the trailing partial window at the end of
/// the run.
///
/// Deltas are attributed to the window in which the boundary-crossing
/// observation happened; if a producer skips more than one full window between
/// observations (it shouldn't — the simulator steps at 1 ns), the intervening
/// windows are emitted with zero deltas.
#[derive(Debug)]
pub struct EpochSampler {
    epoch_len: Cycle,
    max_samples: usize,
    next_boundary: Cycle,
    window_start: Cycle,
    index: u64,
    prev: Observation,
    series: EpochSeries,
    /// Stored samples not yet forwarded to the sink (the chunk tail of
    /// `series.samples`); always `< SINK_FLUSH_CHUNK` between calls.
    pending: usize,
}

impl EpochSampler {
    /// Creates a sampler with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn new(epoch_len: Cycle) -> Self {
        Self::with_max_samples(epoch_len, DEFAULT_MAX_SAMPLES)
    }

    /// Creates a sampler that stops recording after `max_samples` windows.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero or `max_samples` is zero.
    pub fn with_max_samples(epoch_len: Cycle, max_samples: usize) -> Self {
        assert!(epoch_len > Cycle::ZERO, "epoch length must be positive");
        assert!(max_samples > 0, "need room for at least one sample");
        EpochSampler {
            epoch_len,
            max_samples,
            next_boundary: epoch_len,
            window_start: Cycle::ZERO,
            index: 0,
            prev: Observation::default(),
            series: EpochSeries {
                epoch_len,
                samples: Vec::new(),
                truncated: false,
            },
            pending: 0,
        }
    }

    /// Whether `now` has crossed the current window boundary. This is the hot
    /// path: one comparison; everything else happens per epoch.
    #[inline]
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_boundary
    }

    /// Clocking contract: the cycle of the next epoch boundary. A time-skipping
    /// simulation loop must not leap past this cycle, so every epoch observes
    /// the machine at exactly the same cycle as a per-step loop would.
    #[inline]
    pub fn next_boundary(&self) -> Cycle {
        self.next_boundary
    }

    /// Closes every window boundary crossed by `now`, attributing the deltas
    /// since the previous observation to the first of them.
    pub fn observe(&mut self, now: Cycle, obs: Observation, sink: &mut dyn Sink) {
        while self.due(now) {
            let end = self.next_boundary;
            self.emit(end, false, &obs, sink);
            self.window_start = end;
            self.next_boundary = end + self.epoch_len;
            // Any further windows crossed by the same observation get zero
            // deltas: `prev` is already `obs` after the first emit.
        }
    }

    /// Closes the trailing partial window (if any time has passed since the
    /// last boundary) and returns the collected series.
    pub fn finish(mut self, now: Cycle, obs: Observation, sink: &mut dyn Sink) -> EpochSeries {
        // A final observation may still close whole windows first.
        self.observe(now, obs.clone(), sink);
        if now > self.window_start {
            self.emit(now, true, &obs, sink);
        }
        self.flush(sink);
        self.series
    }

    /// Forwards the buffered chunk tail of `series.samples` to the sink, in
    /// time order. The sink thus sees exactly the stored series — chunking
    /// changes delivery granularity, never content or order.
    fn flush(&mut self, sink: &mut dyn Sink) {
        let start = self.series.samples.len() - self.pending;
        for sample in &self.series.samples[start..] {
            sink.on_sample(sample);
        }
        self.pending = 0;
    }

    fn emit(&mut self, end: Cycle, partial: bool, obs: &Observation, sink: &mut dyn Sink) {
        let cycles = (end - self.window_start).raw();
        let d = |cur: u64, prev: u64| cur.saturating_sub(prev);
        let ipc: Vec<f64> = obs
            .retired
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let prev = self.prev.retired.get(i).copied().unwrap_or(0);
                if cycles == 0 {
                    0.0
                } else {
                    d(r, prev) as f64 / cycles as f64
                }
            })
            .collect();
        let sample = EpochSample {
            index: self.index,
            start: self.window_start,
            end,
            partial,
            acts: d(obs.acts, self.prev.acts),
            alerts: d(obs.alerts, self.prev.alerts),
            reads: d(obs.reads, self.prev.reads),
            writes: d(obs.writes, self.prev.writes),
            refs: d(obs.refs, self.prev.refs),
            rfms: d(obs.rfms, self.prev.rfms),
            mitigations: d(obs.mitigations, self.prev.mitigations),
            victim_refreshes: d(obs.victim_refreshes, self.prev.victim_refreshes),
            row_hits: d(obs.row_hits, self.prev.row_hits),
            row_misses: d(obs.row_misses, self.prev.row_misses),
            queue_depth: obs.queue_depth,
            ipc,
        };
        self.index += 1;
        self.prev = obs.clone();
        if self.series.samples.len() < self.max_samples {
            self.series.samples.push(sample);
            self.pending += 1;
            if self.pending >= SINK_FLUSH_CHUNK {
                self.flush(sink);
            }
        } else {
            self.series.truncated = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;

    fn obs(acts: u64, retired: &[u64]) -> Observation {
        Observation {
            acts,
            retired: retired.to_vec(),
            ..Observation::default()
        }
    }

    #[test]
    fn windows_align_to_multiples_of_epoch_len() {
        let len = Cycle::from_ns(100);
        let mut s = EpochSampler::new(len);
        let mut sink = NullSink;
        assert!(!s.due(Cycle::from_ns(99)));
        assert!(s.due(Cycle::from_ns(100)));
        s.observe(Cycle::from_ns(100), obs(10, &[400]), &mut sink);
        s.observe(Cycle::from_ns(200), obs(30, &[800]), &mut sink);
        let series = s.finish(Cycle::from_ns(200), obs(30, &[800]), &mut sink);
        assert_eq!(series.samples.len(), 2, "no empty trailing partial");
        let [a, b] = &series.samples[..] else {
            unreachable!()
        };
        assert_eq!((a.start, a.end), (Cycle::ZERO, len));
        assert_eq!((b.start, b.end), (len, len * 2));
        assert_eq!(a.acts, 10);
        assert_eq!(b.acts, 20);
        assert!(!a.partial && !b.partial);
        // 400 instructions over 400 cycles (100 ns) -> IPC 1.0.
        assert!((a.ipc[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn late_observation_crosses_boundary_once() {
        // The simulator steps at 1 ns, so the first observation at or after
        // the boundary closes the window with deltas measured at that point.
        let mut s = EpochSampler::new(Cycle::from_ns(100));
        let mut sink = NullSink;
        s.observe(Cycle::from_ns(103), obs(7, &[]), &mut sink);
        let series = s.finish(Cycle::from_ns(103), obs(7, &[]), &mut sink);
        assert_eq!(series.samples.len(), 2);
        assert_eq!(series.samples[0].end, Cycle::from_ns(100));
        assert_eq!(series.samples[0].acts, 7);
        // The 3 ns past the boundary become a zero-delta trailing partial.
        assert!(series.samples[1].partial);
        assert_eq!(series.samples[1].end, Cycle::from_ns(103));
        assert_eq!(series.samples[1].acts, 0);
    }

    #[test]
    fn skipped_windows_emit_zero_deltas() {
        let mut s = EpochSampler::new(Cycle::from_ns(100));
        let mut sink = NullSink;
        // One observation lands past three boundaries.
        s.observe(Cycle::from_ns(310), obs(12, &[]), &mut sink);
        let series = s.finish(Cycle::from_ns(310), obs(12, &[]), &mut sink);
        assert_eq!(series.samples.len(), 4, "3 whole + 1 partial");
        assert_eq!(series.samples[0].acts, 12, "deltas go to the first window");
        assert_eq!(series.samples[1].acts, 0);
        assert_eq!(series.samples[2].acts, 0);
        assert!(series.samples[3].partial);
        assert_eq!(series.samples[3].end, Cycle::from_ns(310));
    }

    #[test]
    fn final_partial_epoch_is_emitted() {
        let mut s = EpochSampler::new(Cycle::from_ns(100));
        let mut sink = NullSink;
        s.observe(Cycle::from_ns(100), obs(4, &[100]), &mut sink);
        // Run ends mid-window at 140 ns with 6 more ACTs.
        let series = s.finish(Cycle::from_ns(140), obs(10, &[260]), &mut sink);
        assert_eq!(series.samples.len(), 2);
        let last = &series.samples[1];
        assert!(last.partial);
        assert_eq!(
            (last.start, last.end),
            (Cycle::from_ns(100), Cycle::from_ns(140))
        );
        assert_eq!(last.acts, 6);
        // 160 instructions over 160 cycles (40 ns) -> IPC 1.0.
        assert!((last.ipc[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn finish_exactly_on_boundary_has_no_partial() {
        let mut s = EpochSampler::new(Cycle::from_ns(100));
        let mut sink = NullSink;
        s.observe(Cycle::from_ns(100), obs(4, &[]), &mut sink);
        let series = s.finish(Cycle::from_ns(100), obs(4, &[]), &mut sink);
        assert_eq!(series.samples.len(), 1);
        assert!(!series.samples[0].partial);
    }

    #[test]
    fn finish_closes_whole_window_then_partial() {
        // finish() past an unobserved boundary closes the whole window first.
        let s = EpochSampler::new(Cycle::from_ns(100));
        let mut sink = NullSink;
        let series = s.finish(Cycle::from_ns(150), obs(9, &[]), &mut sink);
        assert_eq!(series.samples.len(), 2);
        assert!(!series.samples[0].partial);
        assert_eq!(series.samples[0].acts, 9);
        assert!(series.samples[1].partial);
        assert_eq!(series.samples[1].acts, 0);
    }

    #[test]
    fn max_samples_truncates() {
        let mut s = EpochSampler::with_max_samples(Cycle::from_ns(10), 2);
        let mut sink = NullSink;
        for k in 1..=5u64 {
            s.observe(Cycle::from_ns(10 * k), obs(k, &[]), &mut sink);
        }
        let series = s.finish(Cycle::from_ns(55), obs(9, &[]), &mut sink);
        assert_eq!(series.samples.len(), 2);
        assert!(series.truncated);
    }

    #[test]
    fn queue_depth_is_a_gauge() {
        let mut s = EpochSampler::new(Cycle::from_ns(100));
        let mut sink = NullSink;
        let mut o = obs(1, &[]);
        o.queue_depth = 17;
        s.observe(Cycle::from_ns(100), o.clone(), &mut sink);
        o.queue_depth = 3;
        let series = s.finish(Cycle::from_ns(150), o, &mut sink);
        assert_eq!(series.samples[0].queue_depth, 17);
        assert_eq!(series.samples[1].queue_depth, 3);
    }

    #[test]
    fn series_json_round_trip() {
        let mut s = EpochSampler::new(Cycle::from_ns(100));
        let mut sink = NullSink;
        s.observe(Cycle::from_ns(100), obs(10, &[100, 200]), &mut sink);
        let series = s.finish(Cycle::from_ns(130), obs(12, &[150, 260]), &mut sink);
        let json = series.to_json();
        let back = EpochSeries::from_json(&Json::parse(&json.to_pretty()).unwrap());
        assert_eq!(back, series);
    }

    #[test]
    fn column_lookup() {
        let mut s = EpochSampler::new(Cycle::from_ns(100));
        let mut sink = NullSink;
        s.observe(Cycle::from_ns(100), obs(10, &[200, 400]), &mut sink);
        let series = s.finish(Cycle::from_ns(100), obs(10, &[200, 400]), &mut sink);
        let sample = &series.samples[0];
        assert_eq!(sample.column("acts"), Some(10.0));
        assert_eq!(sample.column("ipc_core1"), Some(1.0));
        assert_eq!(sample.column("ipc_core2"), None);
        assert_eq!(sample.column("nope"), None);
        assert!(series.columns().contains(&"ipc_core0".to_string()));
    }

    #[test]
    fn chunked_sink_delivery_is_bitwise_identical_to_series() {
        use crate::sink::MemorySink;
        // Enough windows to force several full chunks plus a partial tail.
        let windows = SINK_FLUSH_CHUNK as u64 * 3 + 17;
        let mut s = EpochSampler::new(Cycle::from_ns(10));
        let mut sink = MemorySink::new();
        for k in 1..=windows {
            s.observe(Cycle::from_ns(10 * k), obs(k * 3, &[k * 7]), &mut sink);
        }
        let series = s.finish(
            Cycle::from_ns(10 * windows + 4),
            obs(windows * 3 + 1, &[windows * 7 + 2]),
            &mut sink,
        );
        assert_eq!(series.samples.len() as u64, windows + 1);
        assert_eq!(
            sink.samples, series.samples,
            "sink must see exactly the stored series, in order"
        );
    }

    #[test]
    fn truncated_samples_never_reach_the_sink() {
        use crate::sink::MemorySink;
        let mut s = EpochSampler::with_max_samples(Cycle::from_ns(10), 3);
        let mut sink = MemorySink::new();
        for k in 1..=9u64 {
            s.observe(Cycle::from_ns(10 * k), obs(k, &[]), &mut sink);
        }
        let series = s.finish(Cycle::from_ns(95), obs(9, &[]), &mut sink);
        assert!(series.truncated);
        assert_eq!(sink.samples, series.samples);
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_epoch_panics() {
        EpochSampler::new(Cycle::ZERO);
    }
}

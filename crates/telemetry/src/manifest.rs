//! Machine-readable run manifests.
//!
//! A [`RunManifest`] is the JSON document written to `results/<target>.json`
//! alongside each experiment's human-readable `.txt` report. It captures what
//! was run (config, seed, jobs), on what (host parallelism), how it went
//! (wall-clock, exit code, simulated-cycles-per-second throughput), the final
//! metrics registry, and optional per-run epoch time series. The documented
//! schema lives in EXPERIMENTS.md; [`SCHEMA_VERSION`] gates compatibility.

use crate::epoch::EpochSeries;
use crate::json::Json;
use crate::registry::Registry;
use std::fmt::Write as _;
use std::path::Path;

/// Current manifest schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// Metrics and optional time series for one `(workload, scenario)` cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunEntry {
    /// Identity, e.g. `"bwaves/AutoRFM-4"`.
    pub key: String,
    /// Final metrics of the cell.
    pub metrics: Registry,
    /// Epoch time series, when sampling was enabled.
    pub series: Option<EpochSeries>,
}

/// The manifest of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Experiment target name, e.g. `"fig03_rfm_slowdown"`.
    pub target: String,
    /// Schema version ([`SCHEMA_VERSION`] on write).
    pub schema_version: u64,
    /// Free-form configuration pairs (cores, instructions, seed, …).
    pub config: Vec<(String, Json)>,
    /// Worker threads the run used.
    pub jobs: u64,
    /// `available_parallelism()` of the host that produced the run.
    pub host_parallelism: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Process exit code, when recorded by the harness.
    pub exit_code: Option<i64>,
    /// Total simulated cycles across all simulations of the run.
    pub sim_cycles: u64,
    /// Simulated cycles per wall-clock second (throughput trajectory metric).
    pub cycles_per_sec: f64,
    /// Aggregate final metrics.
    pub metrics: Registry,
    /// Per-`(workload, scenario)` cells.
    pub runs: Vec<RunEntry>,
}

impl RunManifest {
    /// Creates an empty manifest for `target`.
    pub fn new(target: &str) -> Self {
        RunManifest {
            target: target.to_string(),
            schema_version: SCHEMA_VERSION,
            config: Vec::new(),
            jobs: 1,
            host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            wall_s: 0.0,
            exit_code: None,
            sim_cycles: 0,
            cycles_per_sec: 0.0,
            metrics: Registry::new(),
            runs: Vec::new(),
        }
    }

    /// Adds (or replaces) a configuration pair.
    pub fn set_config(&mut self, key: &str, value: Json) {
        if let Some(slot) = self.config.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.config.push((key.to_string(), value));
        }
    }

    /// Serializes the manifest.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("target", Json::Str(self.target.clone())),
            ("config", Json::Obj(self.config.clone())),
            ("jobs", Json::Num(self.jobs as f64)),
            ("host_parallelism", Json::Num(self.host_parallelism as f64)),
            ("wall_s", Json::Num(self.wall_s)),
        ];
        if let Some(code) = self.exit_code {
            pairs.push(("exit_code", Json::Num(code as f64)));
        }
        pairs.push(("sim_cycles", Json::Num(self.sim_cycles as f64)));
        pairs.push(("cycles_per_sec", Json::Num(self.cycles_per_sec)));
        pairs.push(("metrics", self.metrics.to_json()));
        pairs.push((
            "runs",
            Json::Arr(
                self.runs
                    .iter()
                    .map(|r| {
                        let mut entry = vec![
                            ("key", Json::Str(r.key.clone())),
                            ("metrics", r.metrics.to_json()),
                        ];
                        if let Some(series) = &r.series {
                            entry.push(("series", series.to_json()));
                        }
                        Json::obj(entry)
                    })
                    .collect(),
            ),
        ));
        Json::obj(pairs)
    }

    /// Parses a manifest from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message if the document is not a manifest (missing `target`
    /// or an unsupported `schema_version`).
    pub fn from_json(json: &Json) -> Result<RunManifest, String> {
        let target = json
            .get("target")
            .and_then(Json::as_str)
            .ok_or("manifest is missing \"target\"")?
            .to_string();
        let schema_version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("manifest is missing \"schema_version\"")?;
        if schema_version > SCHEMA_VERSION {
            return Err(format!(
                "manifest schema v{schema_version} is newer than supported v{SCHEMA_VERSION}"
            ));
        }
        let config = match json.get("config") {
            Some(Json::Obj(pairs)) => pairs.clone(),
            _ => Vec::new(),
        };
        let runs = json
            .get("runs")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|item| {
                        Some(RunEntry {
                            key: item.get("key")?.as_str()?.to_string(),
                            metrics: item
                                .get("metrics")
                                .map(Registry::from_json)
                                .unwrap_or_default(),
                            series: item.get("series").map(EpochSeries::from_json),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(RunManifest {
            target,
            schema_version,
            config,
            jobs: json.get("jobs").and_then(Json::as_u64).unwrap_or(1),
            host_parallelism: json
                .get("host_parallelism")
                .and_then(Json::as_u64)
                .unwrap_or(1),
            wall_s: json.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
            exit_code: json
                .get("exit_code")
                .and_then(Json::as_f64)
                .map(|c| c as i64),
            sim_cycles: json.get("sim_cycles").and_then(Json::as_u64).unwrap_or(0),
            cycles_per_sec: json
                .get("cycles_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            metrics: json
                .get("metrics")
                .map(Registry::from_json)
                .unwrap_or_default(),
            runs,
        })
    }

    /// Writes the manifest as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }

    /// Reads and parses a manifest file.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O, JSON, or schema problems.
    pub fn load(path: &Path) -> Result<RunManifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let json =
            Json::parse(&text).map_err(|e| format!("{} is not JSON: {e}", path.display()))?;
        Self::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Finds the run entry with the given key.
    pub fn run(&self, key: &str) -> Option<&RunEntry> {
        self.runs.iter().find(|r| r.key == key)
    }

    /// A human-readable summary (the `telemetry_report summary` output).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "target            : {}", self.target);
        for (k, v) in &self.config {
            let _ = writeln!(out, "config.{k:<11}: {}", v.to_compact());
        }
        let _ = writeln!(out, "jobs              : {}", self.jobs);
        let _ = writeln!(out, "host parallelism  : {}", self.host_parallelism);
        let _ = writeln!(out, "wall clock        : {:.3} s", self.wall_s);
        if let Some(code) = self.exit_code {
            let _ = writeln!(out, "exit code         : {code}");
        }
        if self.sim_cycles > 0 {
            let _ = writeln!(out, "simulated cycles  : {}", self.sim_cycles);
            let _ = writeln!(
                out,
                "throughput        : {:.3e} cycles/s",
                self.cycles_per_sec
            );
        }
        if !self.metrics.is_empty() {
            let _ = writeln!(out, "metrics           :");
            for m in self.metrics.iter() {
                let _ = writeln!(out, "    {m}");
            }
        }
        if !self.runs.is_empty() {
            let with_series = self.runs.iter().filter(|r| r.series.is_some()).count();
            let _ = writeln!(
                out,
                "runs              : {} ({} with epoch series)",
                self.runs.len(),
                with_series
            );
            for r in &self.runs {
                let epochs = r.series.as_ref().map_or(0, |s| s.samples.len());
                let _ = writeln!(out, "    {} [{} epochs]", r.key, epochs);
            }
        }
        out
    }

    /// Compares this manifest's top-level metrics against `other`'s.
    pub fn diff(&self, other: &RunManifest) -> Vec<MetricDelta> {
        let mut deltas = Vec::new();
        for m in self.metrics.iter() {
            let key = m.key();
            let b = other
                .metrics
                .iter()
                .find(|o| o.key() == key)
                .map(|o| o.value.scalar());
            deltas.push(MetricDelta {
                key,
                a: Some(m.value.scalar()),
                b,
            });
        }
        for o in other.metrics.iter() {
            let key = o.key();
            if !self.metrics.iter().any(|m| m.key() == key) {
                deltas.push(MetricDelta {
                    key,
                    a: None,
                    b: Some(o.value.scalar()),
                });
            }
        }
        deltas
    }
}

/// One metric compared across two manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric identity (`name{labels}`).
    pub key: String,
    /// Value in the first manifest, if present.
    pub a: Option<f64>,
    /// Value in the second manifest, if present.
    pub b: Option<f64>,
}

impl MetricDelta {
    /// `b − a`, when both sides exist.
    pub fn delta(&self) -> Option<f64> {
        Some(self.b? - self.a?)
    }

    /// Relative change `(b − a) / a`, when defined.
    pub fn relative(&self) -> Option<f64> {
        let (a, b) = (self.a?, self.b?);
        if a == 0.0 {
            None
        } else {
            Some((b - a) / a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> RunManifest {
        let mut m = RunManifest::new("fig03_rfm_slowdown");
        m.set_config("cores", Json::Num(8.0));
        m.set_config("instructions", Json::Num(25_000.0));
        m.set_config("seed", Json::Num(42.0));
        m.jobs = 4;
        m.wall_s = 1.25;
        m.sim_cycles = 4_000_000;
        m.cycles_per_sec = 3.2e6;
        m.metrics.counter("acts", &[], 1000);
        m.metrics.gauge("mean_slowdown", &[], 0.33);
        m.runs.push(RunEntry {
            key: "bwaves/RFM-4".into(),
            metrics: {
                let mut r = Registry::new();
                r.counter("acts", &[], 500);
                r
            },
            series: None,
        });
        m
    }

    #[test]
    fn round_trips_through_json() {
        let m = manifest();
        let text = m.to_json().to_pretty();
        let back = RunManifest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("autorfm-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        let m = manifest();
        m.save(&path).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back.target, "fig03_rfm_slowdown");
        assert_eq!(back.run("bwaves/RFM-4").unwrap().metrics.len(), 1);
    }

    #[test]
    fn rejects_non_manifests() {
        assert!(RunManifest::from_json(&Json::parse("{}").unwrap()).is_err());
        let newer = Json::obj(vec![
            ("target", Json::Str("x".into())),
            ("schema_version", Json::Num(99.0)),
        ]);
        assert!(RunManifest::from_json(&newer).is_err());
    }

    /// Malformed and truncated files must come back as `Err`, never a panic —
    /// `telemetry_report` turns these into a message and a nonzero exit.
    #[test]
    fn load_errors_cleanly_on_damaged_files() {
        let dir = std::env::temp_dir().join("autorfm-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, body) in [
            ("garbage.json", "not json at all"),
            ("truncated.json", "{\"target\": \"x\", \"exit_code\":"),
            ("empty.json", ""),
            ("wrong_shape.json", "[1, 2, 3]"),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, body).unwrap();
            let err = RunManifest::load(&path).expect_err(name);
            assert!(err.contains(name), "error should name the file: {err}");
            let _ = std::fs::remove_file(&path);
        }
        assert!(RunManifest::load(&dir.join("missing.json")).is_err());
    }

    #[test]
    fn set_config_replaces() {
        let mut m = RunManifest::new("t");
        m.set_config("cores", Json::Num(8.0));
        m.set_config("cores", Json::Num(2.0));
        assert_eq!(m.config.len(), 1);
        assert_eq!(m.config[0].1, Json::Num(2.0));
    }

    #[test]
    fn diff_reports_changes_and_missing() {
        let a = manifest();
        let mut b = manifest();
        b.metrics.counter("acts", &[], 1100);
        b.metrics.gauge("extra", &[], 1.0);
        let deltas = a.diff(&b);
        let acts = deltas.iter().find(|d| d.key == "acts").unwrap();
        assert_eq!(acts.delta(), Some(100.0));
        assert!((acts.relative().unwrap() - 0.1).abs() < 1e-12);
        let extra = deltas.iter().find(|d| d.key == "extra").unwrap();
        assert_eq!(extra.a, None);
        assert_eq!(extra.delta(), None);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let s = manifest().summary();
        assert!(s.contains("fig03_rfm_slowdown"));
        assert!(s.contains("config.cores"));
        assert!(s.contains("cycles/s"));
        assert!(s.contains("bwaves/RFM-4"));
    }
}

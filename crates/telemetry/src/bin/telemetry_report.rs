//! Inspect `results/<target>.json` run manifests.
//!
//! ```text
//! telemetry_report summary <manifest.json>
//!     Print target, config, wall clock, throughput, and final metrics.
//!
//! telemetry_report diff <a.json> <b.json>
//!     Compare the top-level metrics of two manifests.
//!
//! telemetry_report series <manifest.json> <run-key> [metric]
//!     Dump the epoch time series of one (workload/scenario) run as CSV to
//!     stdout — every column, or just `index,start_ns,end_ns,<metric>`.
//!     With no run-key, lists the runs that carry a series.
//! ```

use autorfm_telemetry::{CsvSink, RunManifest, Sink};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: telemetry_report summary <manifest.json>\n\
         \x20      telemetry_report diff <a.json> <b.json>\n\
         \x20      telemetry_report series <manifest.json> [run-key] [metric]"
    );
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<RunManifest, ExitCode> {
    RunManifest::load(Path::new(path)).map_err(|e| {
        eprintln!("error: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["summary", path] => load(path).map(|m| print!("{}", m.summary())),
        ["diff", a, b] => match (load(a), load(b)) {
            (Ok(ma), Ok(mb)) => {
                diff(&ma, &mb);
                Ok(())
            }
            (Err(e), _) | (_, Err(e)) => Err(e),
        },
        ["series", path] => load(path).map(|m| list_series(&m)),
        ["series", path, key] => load(path).and_then(|m| series(&m, key, None)),
        ["series", path, key, metric] => load(path).and_then(|m| series(&m, key, Some(metric))),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

fn diff(a: &RunManifest, b: &RunManifest) {
    println!("--- {} ({:.3} s)", a.target, a.wall_s);
    println!("+++ {} ({:.3} s)", b.target, b.wall_s);
    let deltas = a.diff(b);
    if deltas.is_empty() {
        println!("(no metrics to compare)");
        return;
    }
    let width = deltas.iter().map(|d| d.key.len()).max().unwrap_or(8);
    for d in &deltas {
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.6}"));
        let rel = d
            .relative()
            .map_or(String::new(), |r| format!("  ({:+.2}%)", r * 100.0));
        println!(
            "{:<width$}  {:>16} -> {:>16}{rel}",
            d.key,
            fmt(d.a),
            fmt(d.b)
        );
    }
    if a.wall_s > 0.0 && b.wall_s > 0.0 {
        println!(
            "wall clock: {:.3} s -> {:.3} s ({:+.1}%)",
            a.wall_s,
            b.wall_s,
            (b.wall_s / a.wall_s - 1.0) * 100.0
        );
    }
}

fn list_series(m: &RunManifest) {
    let with_series: Vec<&str> = m
        .runs
        .iter()
        .filter(|r| r.series.is_some())
        .map(|r| r.key.as_str())
        .collect();
    if with_series.is_empty() {
        println!(
            "{}: no epoch series recorded (re-run with --telemetry)",
            m.target
        );
        return;
    }
    println!("{}: runs with epoch series:", m.target);
    for key in with_series {
        println!("    {key}");
    }
}

fn series(m: &RunManifest, key: &str, metric: Option<&str>) -> Result<(), ExitCode> {
    let Some(run) = m.run(key) else {
        eprintln!("error: no run {key:?} in manifest (try `series <manifest>` to list)");
        return Err(ExitCode::FAILURE);
    };
    let Some(series) = &run.series else {
        eprintln!("error: run {key:?} has no epoch series (re-run with --telemetry)");
        return Err(ExitCode::FAILURE);
    };
    match metric {
        None => {
            let mut sink = CsvSink::new(std::io::stdout());
            for sample in &series.samples {
                sink.on_sample(sample);
            }
        }
        Some(name) => {
            if !series.columns().iter().any(|c| c == name) {
                eprintln!(
                    "error: unknown metric {name:?}; available: {}",
                    series.columns().join(", ")
                );
                return Err(ExitCode::FAILURE);
            }
            println!("index,start_ns,end_ns,{name}");
            for s in &series.samples {
                println!(
                    "{},{},{},{}",
                    s.index,
                    s.start.as_ns(),
                    s.end.as_ns(),
                    s.column(name).unwrap_or(0.0)
                );
            }
        }
    }
    Ok(())
}

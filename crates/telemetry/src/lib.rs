//! # autorfm-telemetry
//!
//! Observability subsystem for the AutoRFM simulator:
//!
//! * [`Registry`] — a labeled metrics registry (counters, gauges, histograms
//!   with quantiles) that the simulator's [`autorfm_sim_core`] statistics
//!   primitives plug into;
//! * [`EpochSampler`] / [`EpochSeries`] — per-tREFI-window time series of
//!   ACT/RFM/REF/ALERT rates, queue occupancy, row-hit rate, and per-core IPC;
//! * [`Sink`] — pluggable sample consumers ([`NullSink`] by default — zero
//!   overhead, output bitwise identical to a telemetry-free build —
//!   plus [`MemorySink`] and [`CsvSink`]);
//! * [`RunManifest`] — the machine-readable `results/<target>.json` documents
//!   the experiment harness writes next to every `.txt` report;
//! * [`Json`] — the self-contained JSON value/parser/writer everything above
//!   uses (the build environment is air-gapped; no serde).
//!
//! The `telemetry_report` binary summarizes a manifest, diffs two manifests,
//! and dumps a selected time series as CSV.
//!
//! # Example
//!
//! ```
//! use autorfm_sim_core::Cycle;
//! use autorfm_telemetry::{EpochSampler, NullSink, Observation, Registry};
//!
//! let mut reg = Registry::new();
//! reg.counter("dram_acts", &[("scenario", "AutoRFM-4")], 1234);
//!
//! let mut sampler = EpochSampler::new(Cycle::from_ns(3900)); // one tREFI
//! let mut sink = NullSink;
//! let obs = Observation { acts: 40, ..Observation::default() };
//! sampler.observe(Cycle::from_ns(3900), obs.clone(), &mut sink);
//! let series = sampler.finish(Cycle::from_ns(5000), obs, &mut sink);
//! assert_eq!(series.samples[0].acts, 40);
//! assert!(series.samples[1].partial);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod epoch;
pub mod json;
pub mod manifest;
pub mod registry;
pub mod sink;

pub use epoch::{EpochSample, EpochSampler, EpochSeries, Observation, DEFAULT_MAX_SAMPLES};
pub use json::{Json, JsonError};
pub use manifest::{MetricDelta, RunEntry, RunManifest, SCHEMA_VERSION};
pub use registry::{HistogramSnapshot, Labels, Metric, MetricValue, Registry};
pub use sink::{CsvSink, MemorySink, NullSink, Sink};

//! A minimal JSON value, writer, and parser.
//!
//! The build environment is air-gapped (no serde), so the telemetry subsystem
//! carries its own JSON support. Objects preserve insertion order so manifests
//! diff cleanly under version control.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always stored as `f64`; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation (manifest files).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        use fmt::Write as _;
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    let _ = write!(out, ":{}", if indent.is_some() { " " } else { "" });
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_num(out: &mut String, n: f64) {
    use fmt::Write as _;
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our manifests;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = Json::obj(vec![
            ("name", Json::Str("fig03".into())),
            ("jobs", Json::Num(8.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
        ]);
        let text = v.to_compact();
        assert_eq!(
            text,
            r#"{"name":"fig03","jobs":8,"ok":true,"none":null,"xs":[1,2.5]}"#
        );
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn round_trips_pretty() {
        let v = Json::obj(vec![(
            "a",
            Json::Obj(vec![("b".into(), Json::Arr(vec![Json::Num(-3.0)]))]),
        )]);
        let text = v.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert!(text.contains("  \"b\""), "indented: {text}");
    }

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        let text = v.to_compact();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(Json::parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::parse(r#"{"x": 3, "s": "hi", "a": [1]}"#).unwrap();
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }
}

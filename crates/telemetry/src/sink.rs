//! Pluggable telemetry sinks.
//!
//! A [`Sink`] receives epoch samples as they are produced and the final
//! metrics registry when a run completes. The default [`NullSink`] does
//! nothing — with telemetry disabled the simulator never constructs a sampler
//! at all, and with telemetry enabled but no sink selected every callback is
//! an empty inlined method, so current output stays bitwise identical.

use crate::epoch::EpochSample;
use crate::registry::Registry;
use std::io::Write;

/// Consumer of telemetry events.
pub trait Sink: Send {
    /// Called once per closed epoch window, in time order.
    fn on_sample(&mut self, _sample: &EpochSample) {}

    /// Called once when the run's final metrics are available.
    fn on_final(&mut self, _registry: &Registry) {}
}

/// The default sink: discards everything, costs nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {}

/// Collects samples and the final registry in memory (tests, reports).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Samples received so far.
    pub samples: Vec<EpochSample>,
    /// The final registry, once delivered.
    pub final_registry: Option<Registry>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for MemorySink {
    fn on_sample(&mut self, sample: &EpochSample) {
        self.samples.push(sample.clone());
    }

    fn on_final(&mut self, registry: &Registry) {
        self.final_registry = Some(registry.clone());
    }
}

/// Streams samples as CSV rows to any writer (files, stdout).
///
/// The header row is written before the first sample; per-core IPC columns are
/// sized from that first sample.
pub struct CsvSink<W: Write + Send> {
    out: W,
    wrote_header: bool,
}

impl<W: Write + Send> CsvSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        CsvSink {
            out,
            wrote_header: false,
        }
    }

    /// Unwraps the inner writer (flushing is the caller's concern).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write + Send> Sink for CsvSink<W> {
    fn on_sample(&mut self, sample: &EpochSample) {
        if !self.wrote_header {
            self.wrote_header = true;
            let mut header: Vec<String> = vec!["index".into(), "start_ns".into(), "end_ns".into()];
            header.extend(EpochSample::SCALAR_COLUMNS.iter().map(|s| s.to_string()));
            header.extend((0..sample.ipc.len()).map(|i| format!("ipc_core{i}")));
            header.push("partial".into());
            let _ = writeln!(self.out, "{}", header.join(","));
        }
        let mut row: Vec<String> = vec![
            sample.index.to_string(),
            sample.start.as_ns().to_string(),
            sample.end.as_ns().to_string(),
        ];
        row.extend(
            EpochSample::SCALAR_COLUMNS
                .iter()
                .map(|c| fmt_cell(sample.column(c).unwrap_or(0.0))),
        );
        row.extend(sample.ipc.iter().map(|&x| fmt_cell(x)));
        row.push((sample.partial as u8).to_string());
        let _ = writeln!(self.out, "{}", row.join(","));
    }
}

fn fmt_cell(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        format!("{}", x as i64)
    } else {
        format!("{x:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autorfm_sim_core::Cycle;

    fn sample(index: u64, acts: u64) -> EpochSample {
        EpochSample {
            index,
            start: Cycle::from_ns(index * 100),
            end: Cycle::from_ns((index + 1) * 100),
            partial: false,
            acts,
            alerts: 1,
            reads: 0,
            writes: 0,
            refs: 0,
            rfms: 0,
            mitigations: 0,
            victim_refreshes: 0,
            row_hits: 3,
            row_misses: 1,
            queue_depth: 5,
            ipc: vec![0.5, 1.0],
        }
    }

    #[test]
    fn memory_sink_collects() {
        let mut sink = MemorySink::new();
        sink.on_sample(&sample(0, 10));
        sink.on_sample(&sample(1, 20));
        let mut reg = Registry::new();
        reg.counter("acts", &[], 30);
        sink.on_final(&reg);
        assert_eq!(sink.samples.len(), 2);
        assert_eq!(sink.final_registry, Some(reg));
    }

    #[test]
    fn csv_sink_writes_header_and_rows() {
        let mut sink = CsvSink::new(Vec::new());
        sink.on_sample(&sample(0, 10));
        sink.on_sample(&sample(1, 20));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("index,start_ns,end_ns,acts,"));
        assert!(lines[0].contains("ipc_core0,ipc_core1,partial"));
        assert!(lines[1].starts_with("0,0,100,10,1,"));
        assert!(lines[1].contains("0.750000"), "row_hit_rate: {}", lines[1]);
        assert!(lines[2].starts_with("1,100,200,20,"));
    }

    #[test]
    fn null_sink_is_a_noop() {
        let mut sink = NullSink;
        sink.on_sample(&sample(0, 1));
        sink.on_final(&Registry::new());
    }
}
